//! Basic block vectors (BBVs) for offline phase analysis.
//!
//! A BBV describes one interval of execution as a vector over static branch
//! PCs, where each component is the number of instructions attributed to the
//! dynamic basic blocks ending at that PC. The SimPoint family of offline
//! classifiers (Sherwood et al., ASPLOS'02) clusters these vectors; the
//! online architecture of the paper is an approximation that projects them
//! into a small number of hardware counters.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::BranchEvent;
use crate::interval::IntervalSummary;

/// A sparse, normalized basic block vector for one interval.
///
/// Components are keyed by branch PC and hold the *fraction* of the
/// interval's instructions attributed to that PC (so components sum to 1 for
/// a non-empty interval).
///
/// # Example
///
/// ```
/// use tpcp_trace::{BbvBuilder, BranchEvent};
///
/// let mut b = BbvBuilder::new();
/// b.observe(BranchEvent::new(0x10, 75));
/// b.observe(BranchEvent::new(0x20, 25));
/// let bbv = b.finish();
/// assert!((bbv.weight(0x10) - 0.75).abs() < 1e-12);
/// assert!((bbv.weight(0x20) - 0.25).abs() < 1e-12);
/// assert_eq!(bbv.weight(0x30), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Bbv {
    components: BTreeMap<u64, f64>,
}

impl Bbv {
    /// The normalized weight of branch PC `pc`, or `0.0` if absent.
    pub fn weight(&self, pc: u64) -> f64 {
        self.components.get(&pc).copied().unwrap_or(0.0)
    }

    /// Number of distinct branch PCs with non-zero weight.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the vector has no components (empty interval).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterates over `(pc, weight)` pairs in ascending PC order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.components.iter().map(|(&pc, &w)| (pc, w))
    }

    /// Manhattan (L1) distance between two normalized BBVs.
    ///
    /// Ranges from 0 (identical code profile) to 2 (disjoint code). This is
    /// the distance SimPoint-style clustering operates on.
    pub fn manhattan_distance(&self, other: &Bbv) -> f64 {
        let mut dist = 0.0;
        let mut a = self.components.iter().peekable();
        let mut b = other.components.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some((&pa, &wa)), Some((&pb, &wb))) => {
                    if pa == pb {
                        dist += (wa - wb).abs();
                        a.next();
                        b.next();
                    } else if pa < pb {
                        dist += wa;
                        a.next();
                    } else {
                        dist += wb;
                        b.next();
                    }
                }
                (Some((_, &wa)), None) => {
                    dist += wa;
                    a.next();
                }
                (None, Some((_, &wb))) => {
                    dist += wb;
                    b.next();
                }
                (None, None) => break,
            }
        }
        dist
    }
}

/// Accumulates branch events into a [`Bbv`] for the current interval.
#[derive(Debug, Clone, Default)]
pub struct BbvBuilder {
    raw: BTreeMap<u64, u64>,
    total: u64,
}

impl BbvBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one branch event's instruction count to its PC's component.
    pub fn observe(&mut self, ev: BranchEvent) {
        *self.raw.entry(ev.pc).or_insert(0) += u64::from(ev.insns);
        self.total += u64::from(ev.insns);
    }

    /// Total instructions observed so far.
    pub fn total_instructions(&self) -> u64 {
        self.total
    }

    /// Finishes the interval, producing a normalized [`Bbv`] and resetting
    /// the builder for the next interval.
    pub fn finish(&mut self) -> Bbv {
        let total = self.total.max(1) as f64;
        let components = std::mem::take(&mut self.raw)
            .into_iter()
            .map(|(pc, n)| (pc, n as f64 / total))
            .collect();
        self.total = 0;
        Bbv { components }
    }
}

/// A whole program execution as per-interval BBVs plus interval summaries.
///
/// This is the input format for offline (SimPoint-style) classification, and
/// the analog of the BBV files that the paper's methodology generates with
/// SimpleScalar.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BbvTrace {
    /// One BBV per interval, in execution order.
    pub vectors: Vec<Bbv>,
    /// Matching interval summaries (same length and order as `vectors`).
    pub summaries: Vec<IntervalSummary>,
}

impl BbvTrace {
    /// Collects a BBV trace by draining an
    /// [`IntervalSource`](crate::IntervalSource).
    ///
    /// # Example
    ///
    /// ```
    /// use tpcp_trace::{BbvTrace, BranchEvent, IntervalCutter};
    ///
    /// let events = (0..100u64).map(|i| (BranchEvent::new(i % 4, 10), 10u64));
    /// let source = IntervalCutter::from_iter(200, events);
    /// let trace = BbvTrace::collect(source);
    /// assert_eq!(trace.len(), 5);
    /// ```
    pub fn collect<S: crate::interval::IntervalSource>(mut source: S) -> Self {
        let mut out = Self::default();
        let mut builder = BbvBuilder::new();
        while let Some(summary) = source.next_interval(&mut |ev| builder.observe(ev)) {
            out.vectors.push(builder.finish());
            out.summaries.push(summary);
        }
        out
    }

    /// Number of intervals in the trace.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the trace contains no intervals.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Per-interval CPIs, in execution order.
    pub fn cpis(&self) -> Vec<f64> {
        self.summaries.iter().map(|s| s.cpi()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IntervalCutter;

    #[test]
    fn builder_normalizes_to_unit_sum() {
        let mut b = BbvBuilder::new();
        b.observe(BranchEvent::new(1, 10));
        b.observe(BranchEvent::new(2, 30));
        b.observe(BranchEvent::new(1, 10));
        let bbv = b.finish();
        let sum: f64 = bbv.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((bbv.weight(1) - 0.4).abs() < 1e-12);
        assert!((bbv.weight(2) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn finish_resets_builder() {
        let mut b = BbvBuilder::new();
        b.observe(BranchEvent::new(1, 10));
        let first = b.finish();
        assert_eq!(first.len(), 1);
        assert_eq!(b.total_instructions(), 0);
        let second = b.finish();
        assert!(second.is_empty());
    }

    #[test]
    fn identical_vectors_have_zero_distance() {
        let mut b = BbvBuilder::new();
        b.observe(BranchEvent::new(1, 10));
        b.observe(BranchEvent::new(2, 10));
        let v = b.finish();
        assert_eq!(v.manhattan_distance(&v.clone()), 0.0);
    }

    #[test]
    fn disjoint_vectors_have_distance_two() {
        let mut b = BbvBuilder::new();
        b.observe(BranchEvent::new(1, 10));
        let a = b.finish();
        b.observe(BranchEvent::new(2, 10));
        let c = b.finish();
        assert!((a.manhattan_distance(&c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let mut b = BbvBuilder::new();
        b.observe(BranchEvent::new(1, 10));
        b.observe(BranchEvent::new(2, 30));
        let x = b.finish();
        b.observe(BranchEvent::new(2, 10));
        b.observe(BranchEvent::new(3, 10));
        let y = b.finish();
        assert!((x.manhattan_distance(&y) - y.manhattan_distance(&x)).abs() < 1e-15);
    }

    #[test]
    fn collect_gathers_all_intervals() {
        let events = vec![
            (BranchEvent::new(1, 50), 100),
            (BranchEvent::new(2, 50), 100),
            (BranchEvent::new(1, 50), 50),
        ];
        let trace = BbvTrace::collect(IntervalCutter::from_iter(100, events));
        assert_eq!(trace.len(), 2);
        assert!((trace.vectors[0].weight(1) - 0.5).abs() < 1e-12);
        assert_eq!(trace.vectors[1].weight(1), 1.0);
        assert_eq!(trace.cpis().len(), 2);
    }
}
