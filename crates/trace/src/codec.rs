//! Compact binary encoding of recorded traces.
//!
//! A [`RecordedTrace`] at 10M-instruction granularity can hold tens of
//! millions of events; the generic serde representation is wasteful for
//! archival. This module provides a dense little-endian framing built on
//! [`bytes`], with delta-encoded PCs within each interval (branch PCs
//! cluster tightly in the address space, so deltas are small).
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  b"TPCPTRC2"                      8 bytes
//! n_intervals: u64
//! per interval:
//!   index: u64, instructions: u64, cycles: u64
//!   metrics: 5 x varint (il1, dl1, l2, tlb misses, branch mispredictions)
//!   n_events: u64
//!   per event: pc_delta_zigzag: varint, insns: varint
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::event::BranchEvent;
use crate::recorded::{RecordedInterval, RecordedTrace};

const MAGIC: &[u8; 8] = b"TPCPTRC2";

/// Errors produced when decoding a trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the trace magic bytes.
    BadMagic,
    /// The buffer ended before the declared contents were read.
    Truncated,
    /// A varint ran past its maximum width.
    MalformedVarint,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "buffer is not a TPCP trace (bad magic)"),
            CodecError::Truncated => write!(f, "trace buffer ended prematurely"),
            CodecError::MalformedVarint => write!(f, "malformed varint in trace buffer"),
        }
    }
}

impl std::error::Error for CodecError {}

fn zigzag_encode(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut out = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let byte = buf.get_u8();
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(CodecError::MalformedVarint)
}

/// Encodes a recorded trace into a compact binary buffer.
///
/// # Example
///
/// ```
/// use tpcp_trace::{decode_trace, encode_trace, RecordedTrace};
///
/// let trace = RecordedTrace::default();
/// let bytes = encode_trace(&trace);
/// let back = decode_trace(bytes)?;
/// assert_eq!(trace, back);
/// # Ok::<(), tpcp_trace::CodecError>(())
/// ```
pub fn encode_trace(trace: &RecordedTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.intervals.len() * 64);
    buf.put_slice(MAGIC);
    buf.put_u64_le(trace.intervals.len() as u64);
    for interval in &trace.intervals {
        buf.put_u64_le(interval.summary.index);
        buf.put_u64_le(interval.summary.instructions);
        buf.put_u64_le(interval.summary.cycles);
        for m in interval.summary.metrics.as_array() {
            put_varint(&mut buf, m);
        }
        buf.put_u64_le(interval.events.len() as u64);
        let mut prev_pc = 0i64;
        for ev in &interval.events {
            let delta = (ev.pc as i64).wrapping_sub(prev_pc);
            prev_pc = ev.pc as i64;
            put_varint(&mut buf, zigzag_encode(delta));
            put_varint(&mut buf, u64::from(ev.insns));
        }
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode_trace`].
///
/// # Errors
///
/// Returns [`CodecError`] if the buffer is not a trace, is truncated, or
/// contains a malformed varint.
pub fn decode_trace(mut buf: Bytes) -> Result<RecordedTrace, CodecError> {
    if buf.remaining() < MAGIC.len() {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let n_intervals = buf.get_u64_le() as usize;
    let mut intervals = Vec::with_capacity(n_intervals.min(1 << 20));
    for _ in 0..n_intervals {
        if buf.remaining() < 24 {
            return Err(CodecError::Truncated);
        }
        let index = buf.get_u64_le();
        let instructions = buf.get_u64_le();
        let cycles = buf.get_u64_le();
        let metrics = crate::metrics::MetricCounts {
            il1_misses: get_varint(&mut buf)?,
            dl1_misses: get_varint(&mut buf)?,
            l2_misses: get_varint(&mut buf)?,
            tlb_misses: get_varint(&mut buf)?,
            branch_mispredictions: get_varint(&mut buf)?,
        };
        if buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let n_events = buf.get_u64_le() as usize;
        let mut events = Vec::with_capacity(n_events.min(1 << 24));
        let mut prev_pc = 0i64;
        for _ in 0..n_events {
            let delta = zigzag_decode(get_varint(&mut buf)?);
            let insns = get_varint(&mut buf)?;
            prev_pc = prev_pc.wrapping_add(delta);
            events.push(BranchEvent::new(prev_pc as u64, insns as u32));
        }
        intervals.push(RecordedInterval {
            events,
            summary: crate::interval::IntervalSummary::new(index, instructions, cycles)
                .with_metrics(metrics),
        });
    }
    Ok(RecordedTrace { intervals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{IntervalCutter, IntervalSummary};

    fn sample() -> RecordedTrace {
        let events = (0..200u64).map(|i| {
            let pc = 0x0040_0000 + (i % 7) * 4;
            (BranchEvent::new(pc, (i % 13 + 1) as u32), i)
        });
        RecordedTrace::record(IntervalCutter::from_iter(100, events))
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample();
        let decoded = decode_trace(encode_trace(&trace)).unwrap();
        assert_eq!(trace, decoded);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = encode_trace(&sample()).to_vec();
        data[0] = b'X';
        assert_eq!(decode_trace(Bytes::from(data)), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let data = encode_trace(&sample());
        for cut in [0, 4, 8, 12, 20, data.len() - 1] {
            let sliced = data.slice(..cut);
            assert!(
                decode_trace(sliced).is_err(),
                "cut at {cut} should fail to decode"
            );
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 16383, 16384, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = RecordedTrace::default();
        assert_eq!(decode_trace(encode_trace(&trace)).unwrap(), trace);
    }

    #[test]
    fn summary_fields_survive() {
        let trace = RecordedTrace {
            intervals: vec![RecordedInterval {
                events: vec![],
                summary: IntervalSummary::new(7, 10_000_000, 23_456_789),
            }],
        };
        let decoded = decode_trace(encode_trace(&trace)).unwrap();
        assert_eq!(decoded.intervals[0].summary.cycles, 23_456_789);
    }

    #[test]
    fn metric_counts_survive() {
        let metrics = crate::metrics::MetricCounts {
            il1_misses: 12,
            dl1_misses: 3_456,
            l2_misses: 789,
            tlb_misses: 0,
            branch_mispredictions: u64::from(u32::MAX) + 5,
        };
        let trace = RecordedTrace {
            intervals: vec![RecordedInterval {
                events: vec![BranchEvent::new(0x40, 10)],
                summary: IntervalSummary::new(0, 10, 20).with_metrics(metrics),
            }],
        };
        let decoded = decode_trace(encode_trace(&trace)).unwrap();
        assert_eq!(decoded.intervals[0].summary.metrics, metrics);
    }

    #[test]
    fn v1_buffers_are_rejected_cleanly() {
        // An old-format buffer must fail with BadMagic (callers re-simulate)
        // rather than mis-decode.
        let mut data = encode_trace(&sample()).to_vec();
        data[7] = b'1'; // TPCPTRC2 -> TPCPTRC1
        assert_eq!(decode_trace(Bytes::from(data)), Err(CodecError::BadMagic));
    }
}
