//! Compact binary encoding of recorded traces.
//!
//! A [`RecordedTrace`] at 10M-instruction granularity can hold tens of
//! millions of events; the generic serde representation is wasteful for
//! archival. This module provides a dense little-endian framing built on
//! [`bytes`], with delta-encoded PCs within each interval (branch PCs
//! cluster tightly in the address space, so deltas are small).
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  b"TPCPTRC2"                      8 bytes
//! n_intervals: u64
//! per interval:
//!   index: u64, instructions: u64, cycles: u64
//!   metrics: 5 x varint (il1, dl1, l2, tlb misses, branch mispredictions)
//!   n_events: u64
//!   per event: pc_delta_zigzag: varint, insns: varint
//! ```
//!
//! Two decoders share one decode loop:
//!
//! - [`decode_trace`] materializes the whole buffer into a
//!   [`RecordedTrace`] (archival, tooling, tests).
//! - [`StreamingDecoder`] yields one interval at a time straight off the
//!   borrowed buffer — no per-interval `Vec` is built unless the caller
//!   asks for one — and implements
//!   [`IntervalSource`](crate::IntervalSource), so a trace replays through
//!   [`drive`](crate::drive) without ever being materialized. This is the
//!   hot path of the experiment engine.

use bytes::{BufMut, Bytes, BytesMut};

use crate::event::BranchEvent;
use crate::index::{IndexError, TraceIndex};
use crate::interval::{IntervalSource, IntervalSummary};
use crate::recorded::{RecordedInterval, RecordedTrace};

const MAGIC: &[u8; 8] = b"TPCPTRC2";

/// Minimum encoded size of one interval: 3 fixed u64s, five 1-byte
/// varints, and the 8-byte event count. Used to bound a declared
/// `n_intervals` against the remaining buffer before allocating.
const MIN_INTERVAL_BYTES: usize = 24 + 5 + 8;

/// Minimum encoded size of one event (two 1-byte varints). Used to bound a
/// declared `n_events` against the remaining buffer before allocating.
const MIN_EVENT_BYTES: usize = 2;

/// Errors produced when decoding a trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the trace magic bytes.
    BadMagic,
    /// The buffer ended before the declared contents were read.
    Truncated,
    /// A varint ran past its maximum width.
    MalformedVarint,
    /// A declared count (`n_intervals` or `n_events`) is larger than the
    /// remaining buffer could possibly hold. Rejected before any
    /// allocation, so a corrupt header cannot trigger an OOM-sized
    /// `Vec::with_capacity`.
    ImplausibleLength,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "buffer is not a TPCP trace (bad magic)"),
            CodecError::Truncated => write!(f, "trace buffer ended prematurely"),
            CodecError::MalformedVarint => write!(f, "malformed varint in trace buffer"),
            CodecError::ImplausibleLength => {
                write!(f, "declared element count exceeds remaining buffer")
            }
        }
    }
}

impl std::error::Error for CodecError {}

pub(crate) fn zigzag_encode(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

pub(crate) fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a little-endian u64 at `*pos`, advancing it.
#[inline]
fn read_u64_le(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let end = pos.checked_add(8).ok_or(CodecError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Decodes a varint at `*pos` in place, advancing it.
#[inline]
pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    // One- and two-byte fast paths: per-event PC deltas and instruction
    // counts almost always fit in 14 bits, and this function dominates
    // decode time.
    let p = *pos;
    if let Some(&b0) = buf.get(p) {
        if b0 < 0x80 {
            *pos = p + 1;
            return Ok(u64::from(b0));
        }
        if let Some(&b1) = buf.get(p + 1) {
            if b1 < 0x80 {
                *pos = p + 2;
                return Ok(u64::from(b0 & 0x7f) | u64::from(b1) << 7);
            }
        }
    }
    read_varint_general(buf, pos)
}

/// The general varint loop: any length up to ten bytes, shared by the
/// fast-path fallthrough (including its truncated/overlong cases).
fn read_varint_general(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut out = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(CodecError::MalformedVarint)
}

/// Decodes `n_events` delta/insns varint pairs starting at `*pos`,
/// reconstructing absolute PCs and delivering each event. The scalar
/// reference kernel: one bounds-checked varint at a time.
///
/// Plausibility of `n_events` against the remaining buffer is the
/// *caller's* responsibility ([`StreamingDecoder::try_next_interval_with`]
/// checks it before dispatching to either kernel).
#[inline]
fn decode_events_scalar<F: FnMut(BranchEvent)>(
    buf: &[u8],
    pos: &mut usize,
    n_events: u64,
    on_event: &mut F,
) -> Result<(), CodecError> {
    let mut prev_pc = 0i64;
    for _ in 0..n_events {
        let delta = zigzag_decode(read_varint(buf, pos)?);
        let insns = read_varint(buf, pos)?;
        prev_pc = prev_pc.wrapping_add(delta);
        on_event(BranchEvent::new(prev_pc as u64, insns as u32));
    }
    Ok(())
}

/// Batched SWAR twin of [`decode_events_scalar`]: loads the stream in
/// 8-byte register windows and decodes runs of short varints without
/// per-byte bounds checks or value branches.
///
/// The dispatch key is the window's continuation-bit mask
/// (`word & 0x8080…80`). Trace streams are overwhelmingly *periodic* —
/// a phase's PC deltas and instruction counts keep the same byte widths
/// for long runs — so a handful of mask values cover nearly every window,
/// and each gets straight-line code with **constant** shifts and a
/// **constant** byte-count advance. That constant advance is the point:
/// the next window's address never waits on decoded lengths, so loads for
/// window *n+1* issue while window *n* is still being unpacked (the
/// variable-shift variant of this kernel measured slower than scalar for
/// exactly that reason — conditional moves serialized what speculation
/// had parallelized).
///
/// * mask all-clear — eight 1-byte varints: four events, consume 8;
/// * mask `0x…0080_0000_8000_0080` — the dominant (2-byte delta, 1-byte
///   insns) run. Its period is 3 bytes, so 24 bytes = three u64 words =
///   exactly 8 events: when the next two words confirm the pattern (three
///   per-word masks, one per phase of the cycle), a tight run loop decodes
///   8 events per 24-byte super-block until a mask breaks, amortizing
///   dispatch entirely. A lone matching window decodes two events and
///   consumes 6 (re-aligned, so the next window repeats the same mask);
/// * mask `0x…0080_0080_0080_0080` — (2-byte delta, 2-byte insns): two
///   events, consume 8;
/// * any other mask with no two adjacent continuation bits — mixed 1-/2-
///   byte varints, peeled one field at a time from the register;
/// * anything else — a varint of three or more bytes, or fewer than 8
///   bytes left in the buffer — falls back to the scalar kernel for *one*
///   event and re-enters the windowed loop.
///
/// The fast paths only ever consume complete, well-formed varints that
/// are fully in bounds, so every `Truncated`/`MalformedVarint` case is
/// reported by the same scalar code path as before, at the same position.
#[cfg(feature = "simd")]
fn decode_events_swar<F: FnMut(BranchEvent)>(
    buf: &[u8],
    pos: &mut usize,
    n_events: u64,
    on_event: &mut F,
) -> Result<(), CodecError> {
    /// Continuation bit of every byte in a u64 window.
    const CONT: u64 = 0x8080_8080_8080_8080;
    /// Continuation bits of a window holding `[2-byte delta][1-byte insns]`
    /// events back to back: set on bytes 0, 3, and 6.
    const MASK_D2_I1: u64 = 0x0080_0000_8000_0080;
    /// The same periodic (2-byte delta, 1-byte insns) run, continued into
    /// the second and third 8-byte words of a 24-byte super-block. The
    /// pattern's period is 3 bytes, so 24 bytes hold exactly 8 events and
    /// the per-word masks cycle through three phases.
    const MASK_D2_I1_B: u64 = 0x8000_0080_0000_8000;
    const MASK_D2_I1_C: u64 = 0x0000_8000_0080_0000;
    /// Continuation bits of `[2-byte delta][2-byte insns]` events: set on
    /// bytes 0, 2, 4, and 6.
    const MASK_D2_I2: u64 = 0x0080_0080_0080_0080;

    /// Two low 7-bit groups of `word` starting at bit `shift`, joined as a
    /// 2-byte varint value (continuation bits masked off).
    #[inline(always)]
    fn pair(word: u64, shift: u32) -> u64 {
        ((word >> shift) & 0x7f) | ((word >> (shift + 1)) & 0x3f80)
    }

    let mut prev_pc = 0i64;
    let mut remaining = n_events;
    while remaining > 0 {
        let p = *pos;
        let Some(window) = buf.get(p..p + 8) else {
            // Near the end of the buffer: finish through the scalar loop.
            break;
        };
        let word = u64::from_le_bytes(window.try_into().expect("8-byte slice"));
        let cont = word & CONT;

        if cont == MASK_D2_I1 && remaining >= 2 {
            // The dominant periodic layout. While the stream keeps the
            // pattern, decode a 24-byte super-block — exactly 8 events in
            // three constant-offset word loads (the pattern's 3-byte
            // period divides 24). No load address depends on a decoded
            // length, so the loads pipeline across iterations, and the
            // three mask equalities prove every fixed shift below lands on
            // the field it assumes.
            if remaining >= 8 {
                if let (Some(wb1), Some(wb2)) = (buf.get(p + 8..p + 16), buf.get(p + 16..p + 24)) {
                    let mut w0 = word;
                    let mut w1 = u64::from_le_bytes(wb1.try_into().expect("8-byte slice"));
                    let mut w2 = u64::from_le_bytes(wb2.try_into().expect("8-byte slice"));
                    if w1 & CONT == MASK_D2_I1_B && w2 & CONT == MASK_D2_I1_C {
                        // Stay in a tight run loop for as long as the
                        // stream keeps the pattern: each iteration's block
                        // address is q + 24, so decode, mask checks and
                        // the next three loads all overlap.
                        let mut q = p;
                        loop {
                            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(w0, 0)));
                            on_event(BranchEvent::new(prev_pc as u64, (w0 >> 16) as u32 & 0x7f));
                            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(w0, 24)));
                            on_event(BranchEvent::new(prev_pc as u64, (w0 >> 40) as u32 & 0x7f));
                            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(w0, 48)));
                            on_event(BranchEvent::new(prev_pc as u64, w1 as u32 & 0x7f));
                            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(w1, 8)));
                            on_event(BranchEvent::new(prev_pc as u64, (w1 >> 24) as u32 & 0x7f));
                            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(w1, 32)));
                            on_event(BranchEvent::new(prev_pc as u64, (w1 >> 48) as u32 & 0x7f));
                            // The only field that straddles a word
                            // boundary: delta low byte 15 (end of w1),
                            // high byte 16 (start of w2).
                            let raw = ((w1 >> 56) & 0x7f) | ((w2 & 0x7f) << 7);
                            prev_pc = prev_pc.wrapping_add(zigzag_decode(raw));
                            on_event(BranchEvent::new(prev_pc as u64, (w2 >> 8) as u32 & 0x7f));
                            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(w2, 16)));
                            on_event(BranchEvent::new(prev_pc as u64, (w2 >> 32) as u32 & 0x7f));
                            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(w2, 40)));
                            on_event(BranchEvent::new(prev_pc as u64, (w2 >> 56) as u32 & 0x7f));
                            q += 24;
                            remaining -= 8;
                            if remaining < 8 {
                                break;
                            }
                            let Some(nb) = buf.get(q..q + 24) else { break };
                            let n0 = u64::from_le_bytes(nb[0..8].try_into().expect("8-byte slice"));
                            let n1 =
                                u64::from_le_bytes(nb[8..16].try_into().expect("8-byte slice"));
                            let n2 =
                                u64::from_le_bytes(nb[16..24].try_into().expect("8-byte slice"));
                            if n0 & CONT != MASK_D2_I1
                                || n1 & CONT != MASK_D2_I1_B
                                || n2 & CONT != MASK_D2_I1_C
                            {
                                break;
                            }
                            w0 = n0;
                            w1 = n1;
                            w2 = n2;
                        }
                        *pos = q;
                        continue;
                    }
                }
            }
            // Two (2-byte delta, 1-byte insns) events; bytes 6-7 start the
            // next event and are left for the next window.
            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(word, 0)));
            on_event(BranchEvent::new(prev_pc as u64, (word >> 16) as u32 & 0x7f));
            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(word, 24)));
            on_event(BranchEvent::new(prev_pc as u64, (word >> 40) as u32 & 0x7f));
            *pos = p + 6;
            remaining -= 2;
            continue;
        }

        if cont == 0 && remaining >= 4 {
            // Eight 1-byte varints: four complete events in one load.
            let b = word.to_le_bytes();
            for k in 0..4 {
                prev_pc = prev_pc.wrapping_add(zigzag_decode(u64::from(b[2 * k])));
                on_event(BranchEvent::new(prev_pc as u64, u32::from(b[2 * k + 1])));
            }
            *pos = p + 8;
            remaining -= 4;
            continue;
        }

        if cont == MASK_D2_I2 && remaining >= 2 {
            // Two (2-byte delta, 2-byte insns) events filling the window.
            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(word, 0)));
            on_event(BranchEvent::new(prev_pc as u64, pair(word, 16) as u32));
            prev_pc = prev_pc.wrapping_add(zigzag_decode(pair(word, 32)));
            on_event(BranchEvent::new(prev_pc as u64, pair(word, 48) as u32));
            *pos = p + 8;
            remaining -= 2;
            continue;
        }

        if cont & (cont >> 8) != 0 {
            // Two adjacent continuation bits: a varint of three or more
            // bytes somewhere in the window. Decode one event through the
            // general path (same error positions as the scalar kernel),
            // then resume windowed decode.
            let delta = zigzag_decode(read_varint(buf, pos)?);
            let insns = read_varint(buf, pos)?;
            prev_pc = prev_pc.wrapping_add(delta);
            on_event(BranchEvent::new(prev_pc as u64, insns as u32));
            remaining -= 1;
            continue;
        }

        // Aperiodic mix of 1-/2-byte varints: peel fields one at a time
        // from the register while a max-size (2+2-byte) event still fits.
        // A field at `off <= 6` may read one byte past itself (masked off
        // for 1-byte varints), never past the window.
        let mut off = 0usize;
        loop {
            let c0 = (word >> (8 * off + 7)) & 1;
            let d_len = 1 + c0 as usize;
            let raw_delta = ((word >> (8 * off)) & 0x7f)
                | (((word >> (8 * off + 8)) & 0x7f) << 7) & 0u64.wrapping_sub(c0);
            let o1 = off + d_len;
            let c1 = (word >> (8 * o1 + 7)) & 1;
            let insns = ((word >> (8 * o1)) & 0x7f)
                | (((word >> (8 * o1 + 8)) & 0x7f) << 7) & 0u64.wrapping_sub(c1);
            prev_pc = prev_pc.wrapping_add(zigzag_decode(raw_delta));
            on_event(BranchEvent::new(prev_pc as u64, insns as u32));
            off = o1 + 1 + c1 as usize;
            remaining -= 1;
            if off > 4 || remaining == 0 {
                break;
            }
        }
        *pos = p + off;
    }
    // Buffer tail (or an early bail above): scalar, continuing from the
    // running PC.
    for _ in 0..remaining {
        let delta = zigzag_decode(read_varint(buf, pos)?);
        let insns = read_varint(buf, pos)?;
        prev_pc = prev_pc.wrapping_add(delta);
        on_event(BranchEvent::new(prev_pc as u64, insns as u32));
    }
    Ok(())
}

/// Encodes a recorded trace into a compact binary buffer.
///
/// # Example
///
/// ```
/// use tpcp_trace::{decode_trace, encode_trace, RecordedTrace};
///
/// let trace = RecordedTrace::default();
/// let bytes = encode_trace(&trace);
/// let back = decode_trace(bytes)?;
/// assert_eq!(trace, back);
/// # Ok::<(), tpcp_trace::CodecError>(())
/// ```
pub fn encode_trace(trace: &RecordedTrace) -> Bytes {
    encode_frames(trace).freeze()
}

/// Encodes a recorded trace and builds its [`TraceIndex`] in the same
/// pass: frame offsets are captured as they are written, so the sidecar
/// costs one checksum sweep instead of a full decode re-walk.
///
/// The payload is byte-identical to [`encode_trace`]'s, and the index is
/// identical to [`TraceIndex::build`] run over that payload (pinned by
/// tests).
pub fn encode_trace_with_index(trace: &RecordedTrace) -> (Bytes, TraceIndex) {
    let buf = encode_frames(trace);
    let mut checkpoints = Vec::with_capacity(trace.intervals.len() + 1);
    let mut offset = 16u64; // magic + n_intervals
    let (mut events, mut instructions, mut cycles) = (0u64, 0u64, 0u64);
    for interval in &trace.intervals {
        checkpoints.push(crate::index::IntervalCheckpoint {
            byte_offset: offset,
            events,
            instructions,
            cycles,
        });
        offset += frame_len(interval);
        events += interval.events.len() as u64;
        instructions += interval.summary.instructions;
        cycles += interval.summary.cycles;
    }
    checkpoints.push(crate::index::IntervalCheckpoint {
        byte_offset: offset,
        events,
        instructions,
        cycles,
    });
    debug_assert_eq!(offset as usize, buf.len());
    let payload = buf.freeze();
    let index = TraceIndex {
        payload_len: payload.len() as u64,
        payload_checksum: crate::index::payload_checksum(&payload),
        checkpoints,
    };
    (payload, index)
}

/// The shared encode loop behind [`encode_trace`] and
/// [`encode_trace_with_index`].
fn encode_frames(trace: &RecordedTrace) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64 + trace.intervals.len() * 64);
    buf.put_slice(MAGIC);
    buf.put_u64_le(trace.intervals.len() as u64);
    for interval in &trace.intervals {
        buf.put_u64_le(interval.summary.index);
        buf.put_u64_le(interval.summary.instructions);
        buf.put_u64_le(interval.summary.cycles);
        for m in interval.summary.metrics.as_array() {
            put_varint(&mut buf, m);
        }
        buf.put_u64_le(interval.events.len() as u64);
        let mut prev_pc = 0i64;
        for ev in &interval.events {
            let delta = (ev.pc as i64).wrapping_sub(prev_pc);
            prev_pc = ev.pc as i64;
            put_varint(&mut buf, zigzag_encode(delta));
            put_varint(&mut buf, u64::from(ev.insns));
        }
    }
    buf
}

/// Encoded byte length of one interval frame, mirroring the writes in
/// [`encode_frames`] without buffering.
fn frame_len(interval: &RecordedInterval) -> u64 {
    let mut len = (24 + 8) as u64; // fixed summary + event count
    for m in interval.summary.metrics.as_array() {
        len += varint_len(m);
    }
    let mut prev_pc = 0i64;
    for ev in &interval.events {
        let delta = (ev.pc as i64).wrapping_sub(prev_pc);
        prev_pc = ev.pc as i64;
        len += varint_len(zigzag_encode(delta)) + varint_len(u64::from(ev.insns));
    }
    len
}

/// Bytes [`put_varint`] emits for `v`.
#[inline]
fn varint_len(v: u64) -> u64 {
    (64 - v.max(1).leading_zeros() as u64).div_ceil(7)
}

/// Decodes a buffer produced by [`encode_trace`] into a fully materialized
/// [`RecordedTrace`].
///
/// Replay-only consumers should prefer [`StreamingDecoder`], which walks
/// the same format without building per-interval event vectors.
///
/// # Errors
///
/// Returns [`CodecError`] if the buffer is not a trace, is truncated, or
/// contains a malformed varint.
pub fn decode_trace(buf: Bytes) -> Result<RecordedTrace, CodecError> {
    let mut decoder = StreamingDecoder::new(&buf)?;
    // Safe to allocate: `StreamingDecoder::new` bounded `n_intervals`
    // against the buffer length.
    let mut intervals = Vec::with_capacity(decoder.n_intervals() as usize);
    let mut events: Vec<BranchEvent> = Vec::new();
    while let Some(summary) = decoder.try_next_interval_with(&mut |ev| events.push(ev))? {
        let hint = events.len();
        intervals.push(RecordedInterval {
            events: std::mem::take(&mut events),
            summary,
        });
        // Intervals of a trace are similar in size: sizing each fresh
        // vector off its predecessor avoids regrowing from empty.
        events.reserve(hint);
    }
    Ok(RecordedTrace { intervals })
}

/// Validates an encoded trace buffer without materializing anything.
///
/// Walks every interval and event frame, checking magic, bounds, and
/// varint well-formedness. Returns the interval count on success. This is
/// what cache readers run before streaming a buffer into live consumers:
/// it costs one allocation-free pass and guarantees the subsequent replay
/// cannot fail half-way through.
pub fn validate_trace(buf: &[u8]) -> Result<u64, CodecError> {
    let mut decoder = StreamingDecoder::new(buf)?;
    while decoder.try_next_interval_with(&mut |_| {})?.is_some() {}
    Ok(decoder.intervals_decoded())
}

/// A streaming, zero-copy decoder over an encoded trace buffer.
///
/// Yields one interval at a time straight off the borrowed bytes: PC
/// deltas and instruction counts are zigzag/varint-decoded in place and
/// handed to the caller's event callback, so replaying a multi-gigabyte
/// trace needs no heap proportional to the trace. An optional scratch
/// buffer ([`next_interval_buffered`](Self::next_interval_buffered)) is
/// reused across intervals for callers that want a slice view.
///
/// `StreamingDecoder` implements [`IntervalSource`], so it can be driven
/// through [`drive`](crate::drive) like any replay. Because
/// `IntervalSource` cannot surface errors, a decode error in that mode
/// ends the stream early and is reported by [`error`](Self::error);
/// callers replaying untrusted bytes should run [`validate_trace`] first
/// (or use [`try_next_interval`](Self::try_next_interval)).
///
/// # Example
///
/// ```
/// use tpcp_trace::{encode_trace, IntervalSource, RecordedTrace, StreamingDecoder};
/// # use tpcp_trace::{BranchEvent, IntervalCutter};
///
/// # let events = (0..40u64).map(|i| (BranchEvent::new(i % 2, 10), 10u64));
/// # let trace = RecordedTrace::record(IntervalCutter::from_iter(100, events));
/// let bytes = encode_trace(&trace);
/// let mut decoder = StreamingDecoder::new(&bytes)?;
/// let mut n = 0;
/// while decoder.next_interval(&mut |_ev| n += 1).is_some() {}
/// assert_eq!(decoder.error(), None);
/// assert_eq!(decoder.intervals_decoded(), trace.len() as u64);
/// # Ok::<(), tpcp_trace::CodecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    n_intervals: u64,
    decoded: u64,
    scratch: Vec<BranchEvent>,
    error: Option<CodecError>,
    /// With the `simd` feature, route event decode through the scalar
    /// reference kernel instead of the SWAR one (perf comparison lanes,
    /// equivalence tests). Without the feature this is inert: the scalar
    /// kernel is the only one compiled.
    force_scalar: bool,
}

impl<'a> StreamingDecoder<'a> {
    /// Opens a decoder over `buf`, validating the magic and header.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadMagic`] for a non-trace buffer,
    /// [`CodecError::Truncated`] for a short header, and
    /// [`CodecError::ImplausibleLength`] when the declared interval count
    /// cannot fit in the remaining bytes.
    pub fn new(buf: &'a [u8]) -> Result<Self, CodecError> {
        let mut pos = 0usize;
        let magic = buf.get(..MAGIC.len()).ok_or(CodecError::Truncated)?;
        if magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        pos += MAGIC.len();
        let n_intervals = read_u64_le(buf, &mut pos)?;
        let remaining = buf.len() - pos;
        if n_intervals > (remaining / MIN_INTERVAL_BYTES) as u64 {
            return Err(CodecError::ImplausibleLength);
        }
        Ok(Self {
            buf,
            pos,
            n_intervals,
            decoded: 0,
            scratch: Vec::new(),
            error: None,
            force_scalar: false,
        })
    }

    /// Forces the scalar event-decode kernel even when the `simd` feature
    /// is compiled in. The two kernels are bit-identical in output and
    /// error behavior; this knob exists so benchmarks and equivalence
    /// tests can time or compare both in one binary. A no-op without the
    /// `simd` feature, where scalar is the only kernel.
    pub fn force_scalar(&mut self, scalar: bool) {
        self.force_scalar = scalar;
    }

    /// Whether the batched SWAR kernel will be used for event decode
    /// (`simd` feature compiled in and not overridden by
    /// [`force_scalar`](Self::force_scalar)).
    pub fn uses_simd(&self) -> bool {
        cfg!(feature = "simd") && !self.force_scalar
    }

    /// Total intervals the header declares.
    pub fn n_intervals(&self) -> u64 {
        self.n_intervals
    }

    /// Intervals decoded so far. After a
    /// [`seek_to_interval`](Self::seek_to_interval) this is the seek
    /// target — i.e. it is always the index of the *next* interval the
    /// decoder will yield.
    pub fn intervals_decoded(&self) -> u64 {
        self.decoded
    }

    /// Current byte position of the decode cursor within the buffer.
    /// Frame-aligned between intervals, which is what
    /// [`TraceIndex::build`] records as checkpoint offsets.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Moves the cursor to the start of `interval`'s frame via its index
    /// checkpoint and resumes zero-copy decode there: the next
    /// [`try_next_interval`](Self::try_next_interval) yields interval
    /// `interval`, bit-identical to having streamed to it. Seeking to
    /// `n_intervals` positions at end-of-trace (the next call returns
    /// `None`). Clears any sticky `IntervalSource`-mode error.
    ///
    /// PC deltas restart from zero at every frame, so no decode state
    /// from the skipped intervals is needed — a checkpoint is a complete
    /// resume point.
    ///
    /// # Errors
    ///
    /// [`IndexError::PayloadMismatch`] when `index` disagrees with this
    /// buffer (wrong interval count or an offset outside the buffer), and
    /// [`IndexError::SeekOutOfRange`] when `interval > n_intervals`.
    /// The cursor is unchanged on error.
    pub fn seek_to_interval(
        &mut self,
        index: &TraceIndex,
        interval: u64,
    ) -> Result<(), IndexError> {
        if index.n_intervals() != self.n_intervals {
            return Err(IndexError::PayloadMismatch);
        }
        let cp = index
            .checkpoint(interval)
            .ok_or(IndexError::SeekOutOfRange)?;
        if cp.byte_offset as usize > self.buf.len() {
            return Err(IndexError::PayloadMismatch);
        }
        self.pos = cp.byte_offset as usize;
        self.decoded = interval;
        self.error = None;
        Ok(())
    }

    /// The decode error that ended an [`IntervalSource`]-mode replay, if
    /// any. `None` means every interval delivered so far decoded cleanly.
    pub fn error(&self) -> Option<CodecError> {
        self.error.clone()
    }

    /// Decodes the next interval, delivering each event to `on_event` in
    /// program order, then returns the interval summary. `Ok(None)` means
    /// every declared interval has been decoded.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated or malformed frame. Events
    /// already delivered for the failing interval are not recalled, so
    /// callers feeding live consumers should pre-validate untrusted
    /// buffers with [`validate_trace`].
    pub fn try_next_interval(
        &mut self,
        on_event: &mut dyn FnMut(BranchEvent),
    ) -> Result<Option<IntervalSummary>, CodecError> {
        self.try_next_interval_with(&mut |ev| on_event(ev))
    }

    /// [`try_next_interval`](Self::try_next_interval) with a statically
    /// dispatched callback. Single-consumer hot loops (the perf harness,
    /// eager decode) get the event delivery inlined; multi-sink fan-out
    /// goes through the `dyn` wrapper above.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated or malformed frame, exactly
    /// as [`try_next_interval`](Self::try_next_interval).
    #[inline]
    pub fn try_next_interval_with<F: FnMut(BranchEvent)>(
        &mut self,
        on_event: &mut F,
    ) -> Result<Option<IntervalSummary>, CodecError> {
        if self.decoded >= self.n_intervals {
            return Ok(None);
        }
        let buf = self.buf;
        let pos = &mut self.pos;
        let index = read_u64_le(buf, pos)?;
        let instructions = read_u64_le(buf, pos)?;
        let cycles = read_u64_le(buf, pos)?;
        let metrics = crate::metrics::MetricCounts {
            il1_misses: read_varint(buf, pos)?,
            dl1_misses: read_varint(buf, pos)?,
            l2_misses: read_varint(buf, pos)?,
            tlb_misses: read_varint(buf, pos)?,
            branch_mispredictions: read_varint(buf, pos)?,
        };
        let n_events = read_u64_le(buf, pos)?;
        if n_events > ((buf.len() - *pos) / MIN_EVENT_BYTES) as u64 {
            return Err(CodecError::ImplausibleLength);
        }
        #[cfg(feature = "simd")]
        if !self.force_scalar {
            decode_events_swar(buf, pos, n_events, on_event)?;
        } else {
            decode_events_scalar(buf, pos, n_events, on_event)?;
        }
        #[cfg(not(feature = "simd"))]
        decode_events_scalar(buf, pos, n_events, on_event)?;
        self.decoded += 1;
        Ok(Some(
            IntervalSummary::new(index, instructions, cycles).with_metrics(metrics),
        ))
    }

    /// Decodes the next interval into an internal scratch buffer that is
    /// reused across calls, returning the events as a slice alongside the
    /// summary. One allocation amortized over the whole trace, regardless
    /// of interval count.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated or malformed frame.
    #[allow(clippy::type_complexity)]
    pub fn next_interval_buffered(
        &mut self,
    ) -> Result<Option<(&[BranchEvent], IntervalSummary)>, CodecError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let result = self.try_next_interval(&mut |ev| scratch.push(ev));
        self.scratch = scratch;
        match result {
            Ok(Some(summary)) => Ok(Some((&self.scratch, summary))),
            Ok(None) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl IntervalSource for StreamingDecoder<'_> {
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary> {
        if self.error.is_some() {
            return None;
        }
        match self.try_next_interval(on_event) {
            Ok(summary) => summary,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{IntervalCutter, IntervalSummary};

    fn sample() -> RecordedTrace {
        let events = (0..200u64).map(|i| {
            let pc = 0x0040_0000 + (i % 7) * 4;
            (BranchEvent::new(pc, (i % 13 + 1) as u32), i)
        });
        RecordedTrace::record(IntervalCutter::from_iter(100, events))
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample();
        let decoded = decode_trace(encode_trace(&trace)).unwrap();
        assert_eq!(trace, decoded);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = encode_trace(&sample()).to_vec();
        data[0] = b'X';
        assert_eq!(decode_trace(Bytes::from(data)), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let data = encode_trace(&sample());
        for cut in [0, 4, 8, 12, 20, data.len() - 1] {
            let sliced = data.slice(..cut);
            assert!(
                decode_trace(sliced).is_err(),
                "cut at {cut} should fail to decode"
            );
        }
    }

    #[test]
    fn truncation_detected_at_every_byte_boundary() {
        // Exhaustive: a cut anywhere strictly inside the buffer must fail
        // both the eager and the streaming decoder — no frame boundary is
        // silently tolerated as end-of-trace.
        let data = encode_trace(&sample());
        for cut in 0..data.len() {
            let sliced = &data[..cut];
            assert!(
                validate_trace(sliced).is_err(),
                "streaming validate of cut at {cut} should fail"
            );
            assert!(
                decode_trace(data.slice(..cut)).is_err(),
                "eager decode of cut at {cut} should fail"
            );
        }
        assert!(validate_trace(&data).is_ok());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 16383, 16384, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let bytes = buf.freeze();
        let mut pos = 0usize;
        for &v in &values {
            assert_eq!(read_varint(&bytes, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn malformed_varint_rejected() {
        // 10 continuation bytes exceed the maximum 64-bit varint width.
        let overlong = [0xffu8; 10];
        let mut pos = 0usize;
        assert_eq!(
            read_varint(&overlong, &mut pos),
            Err(CodecError::MalformedVarint)
        );

        // The same overlong varint planted in a real frame (first metric
        // varint of the first interval) surfaces through both decoders.
        let mut data = encode_trace(&sample()).to_vec();
        let metrics_offset = 8 + 8 + 24; // magic + n_intervals + fixed summary
        data.splice(metrics_offset..metrics_offset + 1, [0xff; 10]);
        assert_eq!(
            validate_trace(&data),
            Err(CodecError::MalformedVarint),
            "streaming decoder must reject an overlong varint"
        );
        assert_eq!(
            decode_trace(Bytes::from(data)),
            Err(CodecError::MalformedVarint)
        );
    }

    #[test]
    fn implausible_interval_count_rejected_before_allocating() {
        // A corrupt header declaring u64::MAX intervals must fail fast
        // with ImplausibleLength, not attempt a giant Vec::with_capacity.
        let mut data = encode_trace(&sample()).to_vec();
        data[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            decode_trace(Bytes::from(data.clone())),
            Err(CodecError::ImplausibleLength)
        );
        assert_eq!(
            StreamingDecoder::new(&data).err(),
            Some(CodecError::ImplausibleLength)
        );
    }

    #[test]
    fn implausible_event_count_rejected_before_allocating() {
        // Corrupt the first interval's n_events field (fixed offset:
        // magic + n_intervals + 24-byte summary + five 1-byte varints —
        // the sample's metrics are all zero).
        let mut data = encode_trace(&sample()).to_vec();
        let n_events_offset = 8 + 8 + 24 + 5;
        data[n_events_offset..n_events_offset + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert_eq!(
            decode_trace(Bytes::from(data.clone())),
            Err(CodecError::ImplausibleLength)
        );
        assert_eq!(validate_trace(&data), Err(CodecError::ImplausibleLength));
    }

    #[test]
    fn streaming_decode_matches_eager_decode() {
        let trace = sample();
        let bytes = encode_trace(&trace);
        let eager = decode_trace(bytes.clone()).unwrap();

        let mut decoder = StreamingDecoder::new(&bytes).unwrap();
        let mut streamed = Vec::new();
        let mut events = Vec::new();
        while let Some(summary) = decoder
            .try_next_interval(&mut |ev| events.push(ev))
            .unwrap()
        {
            streamed.push(RecordedInterval {
                events: std::mem::take(&mut events),
                summary,
            });
        }
        assert_eq!(eager.intervals, streamed);
        assert_eq!(decoder.intervals_decoded(), trace.len() as u64);
    }

    #[test]
    fn streaming_buffered_reuses_scratch() {
        let trace = sample();
        let bytes = encode_trace(&trace);
        let mut decoder = StreamingDecoder::new(&bytes).unwrap();
        let mut i = 0;
        while let Some((events, summary)) = decoder.next_interval_buffered().unwrap() {
            assert_eq!(events, &trace.intervals[i].events[..]);
            assert_eq!(summary, trace.intervals[i].summary);
            i += 1;
        }
        assert_eq!(i, trace.len());
    }

    #[test]
    fn streaming_decoder_is_an_interval_source() {
        let trace = sample();
        let bytes = encode_trace(&trace);
        let mut decoder = StreamingDecoder::new(&bytes).unwrap();
        let replayed = RecordedTrace::record(&mut decoder);
        assert_eq!(replayed, trace);
        assert_eq!(decoder.error(), None);
    }

    #[test]
    fn interval_source_mode_reports_error_and_stops() {
        let trace = sample();
        let data = encode_trace(&trace);
        let cut = &data[..data.len() - 1];
        let mut decoder = StreamingDecoder::new(cut).unwrap();
        let mut n = 0usize;
        while decoder.next_interval(&mut |_| {}).is_some() {
            n += 1;
        }
        assert!(n < trace.len(), "truncated stream must end early");
        assert_eq!(decoder.error(), Some(CodecError::Truncated));
        // Stays finished: repeated polls keep returning None.
        assert!(decoder.next_interval(&mut |_| {}).is_none());
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = RecordedTrace::default();
        assert_eq!(decode_trace(encode_trace(&trace)).unwrap(), trace);
        assert_eq!(validate_trace(&encode_trace(&trace)).unwrap(), 0);
    }

    #[test]
    fn summary_fields_survive() {
        let trace = RecordedTrace {
            intervals: vec![RecordedInterval {
                events: vec![],
                summary: IntervalSummary::new(7, 10_000_000, 23_456_789),
            }],
        };
        let decoded = decode_trace(encode_trace(&trace)).unwrap();
        assert_eq!(decoded.intervals[0].summary.cycles, 23_456_789);
    }

    #[test]
    fn metric_counts_survive() {
        let metrics = crate::metrics::MetricCounts {
            il1_misses: 12,
            dl1_misses: 3_456,
            l2_misses: 789,
            tlb_misses: 0,
            branch_mispredictions: u64::from(u32::MAX) + 5,
        };
        let trace = RecordedTrace {
            intervals: vec![RecordedInterval {
                events: vec![BranchEvent::new(0x40, 10)],
                summary: IntervalSummary::new(0, 10, 20).with_metrics(metrics),
            }],
        };
        let decoded = decode_trace(encode_trace(&trace)).unwrap();
        assert_eq!(decoded.intervals[0].summary.metrics, metrics);
    }

    /// Streams a buffer through both event-decode kernels, returning
    /// `(events, summaries)` per kernel, or the first decode error.
    #[cfg(feature = "simd")]
    #[allow(clippy::type_complexity)]
    fn stream_both_kernels(
        data: &[u8],
    ) -> [Result<(Vec<BranchEvent>, Vec<IntervalSummary>), CodecError>; 2] {
        [false, true].map(|scalar| {
            let mut decoder = StreamingDecoder::new(data)?;
            decoder.force_scalar(scalar);
            let mut events = Vec::new();
            let mut summaries = Vec::new();
            while let Some(summary) = decoder.try_next_interval(&mut |ev| events.push(ev))? {
                summaries.push(summary);
            }
            Ok((events, summaries))
        })
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_swar_decode_matches_scalar_on_sample() {
        let data = encode_trace(&sample());
        let [swar, scalar] = stream_both_kernels(&data);
        assert_eq!(swar, scalar);
        assert!(swar.is_ok());
    }

    /// A trace exercising every varint width: tiny PC deltas (1-byte),
    /// the dominant 2-byte zigzag deltas, huge forward/backward jumps
    /// (up to 10-byte varints), and insns counts from 1 to u32::MAX.
    #[cfg(feature = "simd")]
    fn mixed_width_trace() -> RecordedTrace {
        let pcs = [
            0x40u64,
            0x44,
            0x45,
            0x80_0000,
            0x40,
            u64::MAX - 4,
            3,
            1 << 62,
            0x1000,
            0x1001,
            0x1002,
            0x1003,
            0x1004,
            0x1042,
            0x10_0042,
            0x42,
        ];
        let events = (0..160u64).map(|i| {
            let pc = pcs[(i % 16) as usize].wrapping_add(i / 16);
            let insns = match i % 5 {
                0 => 1,
                1 => 100,
                2 => 16_000,
                3 => 2_000_000,
                _ => u32::MAX,
            };
            (BranchEvent::new(pc, insns), u64::from(insns))
        });
        RecordedTrace::record(IntervalCutter::from_iter(1_000_000, events))
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_swar_decode_matches_scalar_on_mixed_varint_widths() {
        let trace = mixed_width_trace();
        let data = encode_trace(&trace);
        let [swar, scalar] = stream_both_kernels(&data);
        assert_eq!(swar, scalar);
        let (events, _) = swar.unwrap();
        let want: Vec<_> = trace
            .intervals
            .iter()
            .flat_map(|iv| iv.events.iter().copied())
            .collect();
        assert_eq!(events, want);
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_swar_decode_agrees_with_scalar_at_every_truncation_boundary() {
        // Both kernels must report the *same* error for a cut anywhere in
        // the buffer: the SWAR windows only consume complete in-bounds
        // varints, so every truncation funnels into the shared scalar
        // error path.
        let data = encode_trace(&mixed_width_trace());
        for cut in 0..data.len() {
            let [swar, scalar] = stream_both_kernels(&data[..cut]);
            assert_eq!(swar, scalar, "kernels disagree at cut {cut}");
            assert!(swar.is_err(), "cut at {cut} must fail");
        }
        let [swar, scalar] = stream_both_kernels(&data);
        assert_eq!(swar, scalar);
        assert!(swar.is_ok());
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_swar_decode_rejects_overlong_varints_like_scalar() {
        // An overlong varint planted mid-event-stream must surface as
        // MalformedVarint from both kernels. Plant it as the first event's
        // delta varint of the first interval of the sample trace.
        let mut data = encode_trace(&sample()).to_vec();
        let first_event = 8 + 8 + 24 + 5 + 8; // magic, count, summary, metrics, n_events
        data.splice(first_event..first_event + 1, [0xff; 10]);
        let [swar, scalar] = stream_both_kernels(&data);
        assert_eq!(swar, scalar);
        assert_eq!(swar.unwrap_err(), CodecError::MalformedVarint);
    }

    #[test]
    fn v1_buffers_are_rejected_cleanly() {
        // An old-format buffer must fail with BadMagic (callers re-simulate)
        // rather than mis-decode.
        let mut data = encode_trace(&sample()).to_vec();
        data[7] = b'1'; // TPCPTRC2 -> TPCPTRC1
        assert_eq!(decode_trace(Bytes::from(data)), Err(CodecError::BadMagic));
    }
}
