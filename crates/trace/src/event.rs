//! Committed-branch events — the unit of observation for phase tracking.

use serde::{Deserialize, Serialize};

/// A single committed branch, as observed by the phase tracking hardware.
///
/// The paper's architecture (Section 4.1) records "the PC of every committed
/// branch and the number of instructions committed between the current branch
/// and the last branch". One `BranchEvent` therefore delimits one *dynamic
/// basic block*: `insns` instructions ending in the branch at `pc`.
///
/// # Example
///
/// ```
/// use tpcp_trace::BranchEvent;
///
/// let ev = BranchEvent::new(0x0040_1a2c, 17);
/// assert_eq!(ev.pc, 0x0040_1a2c);
/// assert_eq!(ev.insns, 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BranchEvent {
    /// Program counter of the committed branch instruction.
    pub pc: u64,
    /// Number of instructions committed since the previous branch,
    /// including the branch itself. Always at least 1 for a well-formed
    /// event.
    pub insns: u32,
}

impl BranchEvent {
    /// Creates a branch event for the branch at `pc` ending a dynamic basic
    /// block of `insns` instructions.
    ///
    /// `insns == 0` is permitted (the accumulator simply ignores it), but
    /// sources produced by this workspace always emit `insns >= 1`.
    #[inline]
    pub const fn new(pc: u64, insns: u32) -> Self {
        Self { pc, insns }
    }
}

impl Default for BranchEvent {
    fn default() -> Self {
        Self::new(0, 1)
    }
}

impl core::fmt::Display for BranchEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#010x}+{}", self.pc, self.insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stores_fields() {
        let ev = BranchEvent::new(0xdead_beef, 42);
        assert_eq!(ev.pc, 0xdead_beef);
        assert_eq!(ev.insns, 42);
    }

    #[test]
    fn default_is_single_instruction_at_zero() {
        let ev = BranchEvent::default();
        assert_eq!(ev.pc, 0);
        assert_eq!(ev.insns, 1);
    }

    #[test]
    fn display_is_hex_plus_count() {
        let ev = BranchEvent::new(0x1000, 5);
        assert_eq!(ev.to_string(), "0x00001000+5");
    }

    #[test]
    fn ordering_is_by_pc_then_insns() {
        let a = BranchEvent::new(1, 10);
        let b = BranchEvent::new(2, 1);
        let c = BranchEvent::new(2, 2);
        assert!(a < b);
        assert!(b < c);
    }
}
