//! Property-based tests for trace invariants.

use proptest::prelude::*;
use tpcp_trace::{
    decode_trace, encode_trace, encode_trace_with_index, validate_trace, BbvBuilder, BranchEvent,
    IndexError, IntervalCutter, IntervalSource, PlannedReplay, RecordedTrace, ReplayPlan,
    StreamingDecoder, TraceIndex,
};

fn arb_event() -> impl Strategy<Value = (BranchEvent, u64)> {
    (any::<u64>(), 1u32..500, 0u64..5_000)
        .prop_map(|(pc, insns, cycles)| (BranchEvent::new(pc, insns), cycles))
}

proptest! {
    /// Cutting a stream into intervals never loses or duplicates events,
    /// instructions, or cycles.
    #[test]
    fn cutter_conserves_totals(events in prop::collection::vec(arb_event(), 0..200),
                               interval_size in 1u64..5_000) {
        let want_insns: u64 = events.iter().map(|(e, _)| u64::from(e.insns)).sum();
        let want_cycles: u64 = events.iter().map(|(_, c)| c).sum();
        let want_events = events.len();

        let mut cutter = IntervalCutter::from_iter(interval_size, events);
        let mut got_events = 0usize;
        let mut got_insns = 0u64;
        let mut got_cycles = 0u64;
        while let Some(s) = cutter.next_interval(&mut |_| got_events += 1) {
            got_insns += s.instructions;
            got_cycles += s.cycles;
        }
        prop_assert_eq!(got_events, want_events);
        prop_assert_eq!(got_insns, want_insns);
        prop_assert_eq!(got_cycles, want_cycles);
    }

    /// Every interval except possibly the last reaches the interval size.
    #[test]
    fn only_last_interval_may_be_short(events in prop::collection::vec(arb_event(), 1..200),
                                       interval_size in 1u64..2_000) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        for iv in trace.intervals.iter().rev().skip(1) {
            prop_assert!(iv.summary.instructions >= interval_size);
        }
    }

    /// Codec round-trip is the identity on arbitrary traces.
    #[test]
    fn codec_round_trip(events in prop::collection::vec(arb_event(), 0..300),
                        interval_size in 1u64..3_000) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let decoded = decode_trace(encode_trace(&trace)).unwrap();
        prop_assert_eq!(trace, decoded);
    }

    /// Streaming decode of an encoded trace is indistinguishable from
    /// eager decode: identical intervals, summaries, and event streams.
    #[test]
    fn streaming_decode_equals_eager_decode(
        events in prop::collection::vec(arb_event(), 0..300),
        interval_size in 1u64..3_000,
    ) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let bytes = encode_trace(&trace);
        let eager = decode_trace(bytes.clone()).unwrap();

        prop_assert_eq!(validate_trace(&bytes).unwrap(), trace.len() as u64);
        let mut decoder = StreamingDecoder::new(&bytes).unwrap();
        let streamed = RecordedTrace::record(&mut decoder);
        prop_assert_eq!(decoder.error(), None);
        prop_assert_eq!(&streamed, &eager);
        prop_assert_eq!(&streamed, &trace);
    }

    /// Any strict prefix of an encoded non-empty trace fails to decode —
    /// truncation at every byte boundary is detected by both decoders.
    #[test]
    fn truncated_buffers_always_rejected(
        events in prop::collection::vec(arb_event(), 1..100),
        interval_size in 1u64..2_000,
        cut_seed in any::<u64>(),
    ) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let bytes = encode_trace(&trace);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(validate_trace(&bytes[..cut]).is_err());
        prop_assert!(decode_trace(bytes.slice(..cut)).is_err());
    }

    /// Randomized byte corruption (XOR flips anywhere in the buffer, not
    /// just truncation) never panics the decoders: validation, eager
    /// decode, and a full streaming drain all terminate with `Ok` or a
    /// typed `CodecError`.
    #[test]
    fn corrupted_buffers_never_panic_decoders(
        events in prop::collection::vec(arb_event(), 1..100),
        interval_size in 1u64..2_000,
        flips in prop::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let mut corrupted = encode_trace(&trace).to_vec();
        for &(pos, mask) in &flips {
            let i = pos % corrupted.len();
            corrupted[i] ^= mask;
        }

        let validated = validate_trace(&corrupted);
        let decoded = decode_trace(bytes::Bytes::from(corrupted.clone()));
        // Eager decode and validation agree on whether the buffer is a
        // trace at all.
        prop_assert_eq!(validated.is_ok(), decoded.is_ok());
        if let Ok(mut decoder) = StreamingDecoder::new(&corrupted) {
            let drained = RecordedTrace::record(&mut decoder);
            if decoder.error().is_none() {
                // A clean streaming drain (e.g. zero masks, or flips that
                // landed in representable fields) means the buffer is a
                // valid trace; the paths must then agree on its contents.
                prop_assert_eq!(validated.unwrap(), drained.len() as u64);
                prop_assert_eq!(decoded.unwrap(), drained);
            } else {
                prop_assert!(validated.is_err());
            }
        } else {
            prop_assert!(validated.is_err());
        }
    }

    /// Replay of a recording is indistinguishable from the recording.
    #[test]
    fn replay_identity(events in prop::collection::vec(arb_event(), 0..200),
                       interval_size in 1u64..2_000) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let replayed = RecordedTrace::record(trace.replay());
        prop_assert_eq!(trace, replayed);
    }

    /// BBV weights are a probability distribution: non-negative, sum to 1.
    #[test]
    fn bbv_is_distribution(events in prop::collection::vec(arb_event(), 1..200)) {
        let mut b = BbvBuilder::new();
        for (ev, _) in &events {
            b.observe(*ev);
        }
        let bbv = b.finish();
        let sum: f64 = bbv.iter().map(|(_, w)| w).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(bbv.iter().all(|(_, w)| w >= 0.0));
    }

    /// The interval index round-trips through its sidecar codec, matches
    /// a rebuild from the payload, and validates against exactly that
    /// payload.
    #[test]
    fn index_round_trip(events in prop::collection::vec(arb_event(), 0..300),
                        interval_size in 1u64..3_000) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let (payload, index) = encode_trace_with_index(&trace);
        prop_assert_eq!(&index, &TraceIndex::build(&payload).unwrap());
        let decoded = TraceIndex::decode(&index.encode()).unwrap();
        prop_assert_eq!(&decoded, &index);
        prop_assert!(decoded.validate(&payload).is_ok());
        prop_assert_eq!(decoded.n_intervals(), trace.len() as u64);
    }

    /// Seeking to any interval boundary and decoding from there is
    /// bit-identical (summaries and event streams) to streaming to that
    /// boundary — for every boundary of the trace.
    #[test]
    fn seek_equals_stream_at_every_boundary(
        events in prop::collection::vec(arb_event(), 1..200),
        interval_size in 1u64..2_000,
    ) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let (payload, index) = encode_trace_with_index(&trace);
        let n = index.n_intervals();

        // Reference: one full streaming pass, per-interval capture.
        let mut streamed = Vec::new();
        let mut decoder = StreamingDecoder::new(&payload).unwrap();
        let mut evs = Vec::new();
        while let Some(s) = decoder.next_interval(&mut |ev| evs.push(ev)) {
            streamed.push((s, std::mem::take(&mut evs)));
        }
        prop_assert_eq!(decoder.error(), None);

        for start in 0..=n {
            let mut seeked = StreamingDecoder::new(&payload).unwrap();
            seeked.seek_to_interval(&index, start).unwrap();
            prop_assert_eq!(seeked.intervals_decoded(), start);
            let mut tail = Vec::new();
            let mut evs = Vec::new();
            while let Some(s) = seeked.next_interval(&mut |ev| evs.push(ev)) {
                tail.push((s, std::mem::take(&mut evs)));
            }
            prop_assert_eq!(seeked.error(), None);
            prop_assert_eq!(&tail[..], &streamed[start as usize..]);
        }
        // One past the end is a loud error, not a wrap or panic.
        let mut past = StreamingDecoder::new(&payload).unwrap();
        prop_assert_eq!(
            past.seek_to_interval(&index, n + 1),
            Err(IndexError::SeekOutOfRange)
        );
    }

    /// A planned replay delivers exactly the planned subset of the full
    /// stream, bit-identical per interval, whatever the plan shape.
    #[test]
    fn planned_replay_equals_filtered_stream(
        events in prop::collection::vec(arb_event(), 1..200),
        interval_size in 1u64..2_000,
        raw_ranges in prop::collection::vec((0u64..40, 1u64..8), 0..6),
    ) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let (payload, index) = encode_trace_with_index(&trace);
        let n = index.n_intervals();

        let mut streamed = Vec::new();
        let mut decoder = StreamingDecoder::new(&payload).unwrap();
        let mut evs = Vec::new();
        while let Some(s) = decoder.next_interval(&mut |ev| evs.push(ev)) {
            streamed.push((s, std::mem::take(&mut evs)));
        }

        let plan = ReplayPlan::from_ranges(
            raw_ranges.iter().map(|&(s, len)| (s.min(n), (s + len).min(n))),
        );
        let expected: Vec<_> = streamed
            .iter()
            .filter(|(s, _)| {
                plan.ranges()
                    .unwrap()
                    .iter()
                    .any(|&(lo, hi)| (lo..hi).contains(&s.index))
            })
            .cloned()
            .collect();

        let mut replay =
            PlannedReplay::new(StreamingDecoder::new(&payload).unwrap(), &index, &plan).unwrap();
        let mut sampled = Vec::new();
        let mut evs = Vec::new();
        while let Some(s) = replay.next_interval(&mut |ev| evs.push(ev)) {
            sampled.push((s, std::mem::take(&mut evs)));
        }
        prop_assert_eq!(replay.error(), None);
        prop_assert_eq!(sampled, expected);
        prop_assert_eq!(
            replay.skip_stats().intervals_skipped,
            n - plan.intervals_planned(n)
        );
    }

    /// Truncated or byte-flipped sidecars decode to a typed
    /// `IndexError` — never a panic — and a tampered sidecar that still
    /// parses structurally fails payload validation.
    #[test]
    fn corrupt_sidecars_fail_gracefully(
        events in prop::collection::vec(arb_event(), 1..120),
        interval_size in 1u64..2_000,
        flips in prop::collection::vec((any::<usize>(), 1u8..255), 1..6),
        cut_seed in any::<u64>(),
    ) {
        let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
        let (payload, index) = encode_trace_with_index(&trace);
        prop_assert!(index.validate(&payload).is_ok());
        let sidecar = index.encode();

        // Truncation anywhere strictly inside the sidecar is corrupt.
        let cut = (cut_seed % sidecar.len() as u64) as usize;
        prop_assert_eq!(
            TraceIndex::decode(&sidecar[..cut]),
            Err(IndexError::CorruptIndex)
        );

        // Byte flips anywhere fail the sidecar's self-checksum at decode
        // time. The only way decode can still succeed is when the flips
        // cancelled each other out — in which case the result must be the
        // original index.
        let mut flipped = sidecar.to_vec();
        for &(pos, mask) in &flips {
            let i = pos % flipped.len();
            flipped[i] ^= mask;
        }
        match TraceIndex::decode(&flipped) {
            Err(IndexError::CorruptIndex) => {}
            Err(e) => prop_assert!(false, "unexpected decode error {e:?}"),
            Ok(parsed) => prop_assert_eq!(parsed, index),
        }
    }

    /// Manhattan distance is symmetric, zero on self, and bounded by 2.
    #[test]
    fn bbv_distance_properties(xs in prop::collection::vec((0u64..64, 1u32..100), 1..50),
                               ys in prop::collection::vec((0u64..64, 1u32..100), 1..50)) {
        let mut b = BbvBuilder::new();
        for &(pc, n) in &xs { b.observe(BranchEvent::new(pc, n)); }
        let x = b.finish();
        for &(pc, n) in &ys { b.observe(BranchEvent::new(pc, n)); }
        let y = b.finish();

        prop_assert!(x.manhattan_distance(&x) < 1e-12);
        let d_xy = x.manhattan_distance(&y);
        let d_yx = y.manhattan_distance(&x);
        prop_assert!((d_xy - d_yx).abs() < 1e-12);
        prop_assert!((0.0..=2.0 + 1e-12).contains(&d_xy));
    }
}

/// Scalar-vs-SWAR decode equivalence, generative twin of the unit tests in
/// `codec.rs`: arbitrary event streams (any PC walk, any insns width) must
/// decode identically through both kernels, on the intact buffer and at
/// every truncation boundary.
#[cfg(feature = "simd")]
mod simd {
    use super::*;

    /// Streams `data` through one kernel, collecting events + summaries.
    fn stream(
        data: &[u8],
        scalar: bool,
    ) -> Result<(Vec<BranchEvent>, Vec<u64>), tpcp_trace::CodecError> {
        let mut decoder = StreamingDecoder::new(data)?;
        decoder.force_scalar(scalar);
        let mut events = Vec::new();
        let mut summaries = Vec::new();
        while let Some(summary) = decoder.try_next_interval(&mut |ev| events.push(ev))? {
            summaries.push(summary.instructions);
        }
        Ok((events, summaries))
    }

    proptest! {
        /// Both kernels deliver the same event stream on any well-formed
        /// buffer, and the SWAR stream reproduces the original events.
        #[test]
        fn simd_swar_decode_equals_scalar_on_arbitrary_streams(
            events in prop::collection::vec(arb_event(), 0..300),
            interval_size in 1u64..3_000,
        ) {
            let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
            let data = encode_trace(&trace);
            let swar = stream(&data, false);
            let scalar = stream(&data, true);
            prop_assert_eq!(&swar, &scalar);
            let (got, _) = swar.unwrap();
            let want: Vec<BranchEvent> = trace
                .intervals
                .iter()
                .flat_map(|iv| iv.events.iter().copied())
                .collect();
            prop_assert_eq!(got, want);
        }

        /// Truncating an arbitrary encoded trace anywhere produces the
        /// same error — and the same already-delivered prefix — from both
        /// kernels: the SWAR fast paths only consume complete in-bounds
        /// varints, so every failure funnels through the shared scalar
        /// error path at the same position.
        #[test]
        fn simd_swar_decode_agrees_with_scalar_under_truncation(
            events in prop::collection::vec(arb_event(), 1..120),
            interval_size in 1u64..2_000,
        ) {
            let trace = RecordedTrace::record(IntervalCutter::from_iter(interval_size, events));
            let data = encode_trace(&trace);
            for cut in 0..data.len() {
                let swar = stream(&data[..cut], false);
                let scalar = stream(&data[..cut], true);
                prop_assert_eq!(&swar, &scalar);
                prop_assert!(swar.is_err(), "cut at {} must fail", cut);
            }
        }
    }
}
