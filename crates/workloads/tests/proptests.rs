//! Property-based tests for workload scripts and simulation.

use proptest::prelude::*;
use tpcp_trace::IntervalSource;
use tpcp_workloads::{Benchmark, Region, ScriptIter, ScriptNode, StreamSpec, WorkloadParams};

/// Deterministic scripts (no RunVar/Choose): Seq/Repeat/Run trees.
fn arb_fixed_script() -> impl Strategy<Value = ScriptNode> {
    let leaf = (0usize..3, 1_000u64..100_000).prop_map(|(r, n)| ScriptNode::run(r, n));
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(ScriptNode::Seq),
            (1u64..4, inner).prop_map(|(times, body)| ScriptNode::repeat(times, body)),
        ]
    })
}

fn regions() -> Vec<Region> {
    (0..3u64)
        .map(|i| {
            Region::loop_nest(
                &format!("r{i}"),
                0x40_0000 + i * 0x10_0000,
                4,
                150,
                StreamSpec::Strided {
                    stride: 16,
                    working_set: 32 * 1024,
                },
            )
        })
        .collect()
}

proptest! {
    /// For fixed scripts, the flattened run durations sum exactly to the
    /// expected-instruction estimate.
    #[test]
    fn fixed_scripts_flatten_exactly(script in arb_fixed_script()) {
        let total: u64 = ScriptIter::new(&script, 7).map(|(_, n)| n).sum();
        let expected = script.expected_instructions();
        prop_assert!((total as f64 - expected).abs() < 0.5, "{total} vs {expected}");
    }

    /// Scaling a fixed script scales its flattened total proportionally
    /// (within per-run rounding of half an instruction each).
    #[test]
    fn scaling_is_proportional(script in arb_fixed_script(), scale in 0.05f64..2.0) {
        let runs: Vec<_> = ScriptIter::new(&script.scaled(scale), 7).collect();
        let total: u64 = runs.iter().map(|&(_, n)| n).sum();
        let expected = script.expected_instructions() * scale;
        let slack = runs.len() as f64 + 1.0;
        prop_assert!(
            (total as f64 - expected).abs() <= slack,
            "{total} vs {expected} (slack {slack})"
        );
    }

    /// Simulated intervals conserve the script's instruction budget and
    /// every interval except the last is full.
    #[test]
    fn simulation_conserves_instructions(script in arb_fixed_script()) {
        let benchmark = Benchmark::new("prop", regions(), script.clone());
        let params = WorkloadParams {
            interval_size: 50_000,
            ..Default::default()
        };
        let mut sim = benchmark.simulate(&params);
        let summaries = sim.drain_summaries();
        let total: u64 = summaries.iter().map(|s| s.instructions).sum();
        // Block granularity can overshoot each run by at most one block
        // (~150 insns); runs can't undershoot.
        let expected = script.expected_instructions();
        let runs = ScriptIter::new(&script, 7).count() as f64;
        prop_assert!(total as f64 >= expected - 0.5);
        prop_assert!(total as f64 <= expected + runs * 700.0 + 700.0);
        for s in summaries.iter().rev().skip(1) {
            prop_assert!(s.instructions >= params.interval_size);
        }
        // Cycles are positive whenever instructions are.
        prop_assert!(summaries.iter().all(|s| s.cycles > 0 || s.instructions == 0));
    }

    /// Simulation is deterministic in (script, seed).
    #[test]
    fn simulation_deterministic(script in arb_fixed_script(), seed in 0u64..1000) {
        let benchmark = Benchmark::new("prop", regions(), script);
        let params = WorkloadParams {
            interval_size: 50_000,
            seed,
            ..Default::default()
        };
        let a = benchmark.simulate(&params).drain_summaries();
        let b = benchmark.simulate(&params).drain_summaries();
        prop_assert_eq!(a, b);
    }
}
