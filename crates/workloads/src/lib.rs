//! Synthetic SPEC CPU2000-like workload models.
//!
//! The paper evaluates on eleven benchmark/input pairs (ammp, bzip2/graphic,
//! bzip2/program, galgel, gcc/166, gcc/scilab, gzip/graphic, gzip/program,
//! mcf, perl/diffmail, perl/splitmail) run under SimpleScalar. We do not
//! have SPEC or its reference inputs, so this crate builds the closest
//! synthetic equivalent (see DESIGN.md §2): each benchmark is modeled as a
//! set of code [`Region`]s — loop nests with basic blocks at fixed PCs,
//! characteristic memory access streams, and branch behaviour — driven by a
//! hierarchical [`ScriptNode`] phase script that reproduces the benchmark's
//! *documented phase structure*:
//!
//! | model | structural property reproduced (paper's characterization) |
//! |---|---|
//! | `ammp` | few long stable phases |
//! | `bzip2/g`, `bzip2/p` | "complex hierarchical phase patterns" |
//! | `galgel` | hardest to classify: many similar-but-distinct FP phases |
//! | `gcc/1`, `gcc/s` | many short phases, frequent transitions; scilab transitions ~30% of intervals at min-count 8 |
//! | `gzip/g` | few exceptionally long stable phases (~40% of changes into long runs) |
//! | `gzip/p` | hierarchical compress/flush pattern |
//! | `mcf` | pointer-chasing, many cache misses; same code with different data footprints (benefits from tighter thresholds) |
//! | `perl/d` | short program, few exceptionally long phases |
//! | `perl/s` | same-code/different-data modes (benefits from dynamic thresholds) |
//!
//! Execution drives the `tpcp-uarch` memory hierarchy and branch predictor
//! block by block, so per-interval CPI *emerges* from the code's locality
//! and predictability rather than being injected.
//!
//! # Example
//!
//! ```
//! use tpcp_trace::IntervalSource;
//! use tpcp_workloads::{BenchmarkKind, WorkloadParams};
//!
//! // A scaled-down run of the mcf model.
//! let params = WorkloadParams { length_scale: 0.02, ..Default::default() };
//! let mut sim = BenchmarkKind::Mcf.build(&params).simulate(&params);
//! let summaries = sim.drain_summaries();
//! assert!(summaries.len() > 10);
//! // mcf is memory bound: CPI is well above the machine's ideal.
//! let avg: f64 = summaries.iter().map(|s| s.cpi()).sum::<f64>() / summaries.len() as f64;
//! assert!(avg > 1.0, "mcf-like CPI was {avg}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod models;
mod region;
mod script;
mod sim;

pub use models::{BenchmarkKind, ParseBenchmarkError, MODEL_VERSION};
pub use region::{Block, Region, StreamSpec};
pub use script::{ScriptIter, ScriptNode};
pub use sim::{Benchmark, WorkloadParams, WorkloadSim};
