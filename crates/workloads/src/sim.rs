//! The workload execution engine: drives region code through the
//! microarchitecture substrate, producing an interval stream with emergent
//! CPI.

use tpcp_trace::{BranchEvent, IntervalSource, IntervalSummary, MetricCounts};
use tpcp_uarch::stream::{
    AddressStream, PointerChaseStream, RandomStream, SplitMix64, StridedStream,
};
use tpcp_uarch::{EventCounts, HybridPredictor, MachineConfig, MemoryHierarchy, TimingModel};

use crate::region::{Region, StreamSpec};
use crate::script::{ScriptIter, ScriptNode};

/// Per-sample caps for microarchitectural activity per dynamic block.
/// Sampled activity is scaled back up to the block's real event counts, so
/// these only bound simulation cost, not modeled behaviour.
const MAX_FETCH_SAMPLES: u64 = 4;
const MAX_LOAD_SAMPLES: u64 = 16;
const BRANCH_SAMPLES: u64 = 4;

/// Global knobs for building and running a benchmark model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Instructions per interval. The paper uses 10M; the models here are
    /// calibrated for 1M-instruction intervals (the paper notes the same
    /// techniques work from 1M to 100M), which keeps full-suite experiment
    /// runs tractable.
    pub interval_size: u64,
    /// Multiplies every script duration; use ≪ 1 for quick tests.
    pub length_scale: f64,
    /// The simulated machine (Table 1 by default).
    pub machine: MachineConfig,
    /// Seed for script randomness and noisy branches.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            interval_size: 1_000_000,
            length_scale: 1.0,
            machine: MachineConfig::hpca2005(),
            seed: 0xC0FFEE,
        }
    }
}

/// A fully specified benchmark model: regions plus a phase script.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Display name, e.g. `"bzip2/g"`.
    pub name: String,
    /// The benchmark's code regions.
    pub regions: Vec<Region>,
    /// The phase script, with durations in instructions.
    pub script: ScriptNode,
}

impl Benchmark {
    /// Creates a benchmark after validating that the script only references
    /// existing regions.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty or the script references a region index
    /// out of range.
    pub fn new(name: &str, regions: Vec<Region>, script: ScriptNode) -> Self {
        assert!(!regions.is_empty(), "benchmark needs at least one region");
        assert!(
            script.max_region() < regions.len(),
            "script references region {} but only {} exist",
            script.max_region(),
            regions.len()
        );
        Self {
            name: name.to_owned(),
            regions,
            script,
        }
    }

    /// Estimated total instructions at the given scale.
    pub fn expected_instructions(&self, params: &WorkloadParams) -> f64 {
        self.script.expected_instructions() * params.length_scale
    }

    /// Builds the simulator for this benchmark.
    pub fn simulate(&self, params: &WorkloadParams) -> WorkloadSim {
        WorkloadSim::new(self, params)
    }
}

#[derive(Debug)]
enum StreamState {
    Strided(StridedStream),
    Random(RandomStream),
    PointerChase(PointerChaseStream),
}

impl StreamState {
    fn build(spec: &StreamSpec, base: u64, seed: u64) -> Self {
        match *spec {
            StreamSpec::Strided {
                stride,
                working_set,
            } => StreamState::Strided(StridedStream::new(base, stride, working_set)),
            StreamSpec::Random { working_set } => {
                StreamState::Random(RandomStream::new(base, working_set, seed))
            }
            StreamSpec::PointerChase { nodes, node_bytes } => {
                StreamState::PointerChase(PointerChaseStream::new(base, nodes, node_bytes))
            }
        }
    }

    fn next_addr(&mut self) -> u64 {
        match self {
            StreamState::Strided(s) => s.next_addr(),
            StreamState::Random(s) => s.next_addr(),
            StreamState::PointerChase(s) => s.next_addr(),
        }
    }
}

#[derive(Debug)]
struct RegionState {
    region: Region,
    stream: StreamState,
    /// Round-robin block cursor.
    cursor: usize,
    /// Bresenham accumulator per block for deterministic branch patterns.
    branch_err: Vec<f64>,
}

/// Executes a [`Benchmark`] against the memory hierarchy, branch predictor,
/// and timing model, yielding fixed-length intervals.
///
/// Implements [`IntervalSource`]; see the crate docs for an example.
#[derive(Debug)]
pub struct WorkloadSim {
    regions: Vec<RegionState>,
    /// Pre-flattened script: `(region, instructions)` runs in order.
    runs: Vec<(usize, u64)>,
    run_cursor: usize,
    /// Instructions remaining in the current run.
    run_remaining: u64,
    interval_size: u64,
    next_index: u64,
    finished: bool,
    memory: MemoryHierarchy,
    branches: HybridPredictor,
    timing: TimingModel,
    rng: SplitMix64,
}

impl WorkloadSim {
    fn new(benchmark: &Benchmark, params: &WorkloadParams) -> Self {
        assert!(params.interval_size > 0, "interval size must be positive");
        assert!(params.length_scale > 0.0, "length scale must be positive");
        let scaled = benchmark.script.scaled(params.length_scale);
        let runs: Vec<(usize, u64)> = ScriptIter::new(&scaled, params.seed).collect();
        let regions = benchmark
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| RegionState {
                stream: StreamState::build(&r.stream, r.data_base, params.seed ^ (i as u64) << 32),
                cursor: 0,
                branch_err: vec![0.0; r.blocks.len()],
                region: r.clone(),
            })
            .collect();
        Self {
            regions,
            runs,
            run_cursor: 0,
            run_remaining: 0,
            interval_size: params.interval_size,
            next_index: 0,
            finished: false,
            memory: MemoryHierarchy::new(&params.machine),
            branches: HybridPredictor::hpca2005(),
            timing: TimingModel::new(params.machine),
            rng: SplitMix64::new(params.seed ^ 0x5151_5151),
        }
    }

    /// Executes one dynamic basic block of the given region, returning the
    /// branch event, the cycles charged, and the block's event counts.
    fn execute_block(&mut self, region_idx: usize) -> (BranchEvent, u64, EventCounts) {
        let state = &mut self.regions[region_idx];
        let block_idx = state.cursor;
        state.cursor = (state.cursor + 1) % state.region.blocks.len();
        let block = state.region.blocks[block_idx];
        let insns = u64::from(block.insns);

        let mut il1_misses = 0.0f64;
        let mut dl1_misses = 0.0f64;
        let mut l2_misses = 0.0f64;

        // Instruction fetch: sample cache lines across the block's code
        // footprint at deterministic offsets, then scale to the real line
        // count.
        let code_bytes = insns * 4;
        let code_lines = code_bytes.div_ceil(32).max(1);
        let fetch_samples = code_lines.min(MAX_FETCH_SAMPLES);
        let fetch_scale = code_lines as f64 / fetch_samples as f64;
        for s in 0..fetch_samples {
            let addr = block.pc + s * (code_bytes / fetch_samples).max(32);
            let (il1_miss, l2_miss) = self.memory.fetch_instruction(addr);
            if il1_miss {
                il1_misses += fetch_scale;
            }
            if l2_miss {
                l2_misses += fetch_scale;
            }
        }

        // Data accesses: sample from the region's stream.
        let n_loads = (insns as f64 * state.region.loads_per_insn).round() as u64;
        let load_samples = n_loads.min(MAX_LOAD_SAMPLES);
        let load_scale = if load_samples == 0 {
            0.0
        } else {
            n_loads as f64 / load_samples as f64
        };
        self.memory.take_tlb_misses(); // clear any residue
        for _ in 0..load_samples {
            let addr = state.stream.next_addr();
            match self.memory.access_data(addr, false) {
                tpcp_uarch::DataAccessOutcome::L1 => {}
                tpcp_uarch::DataAccessOutcome::L2 => dl1_misses += load_scale,
                tpcp_uarch::DataAccessOutcome::Memory => {
                    dl1_misses += load_scale;
                    l2_misses += load_scale;
                }
            }
        }
        let tlb_misses = self.memory.take_tlb_misses() as f64 * load_scale;

        // Branches: the block's terminating branch pattern, sampled a few
        // times and scaled to the region's real branch density.
        let n_branches = (insns as f64 * state.region.branches_per_insn)
            .round()
            .max(1.0);
        let branch_scale = n_branches / BRANCH_SAMPLES as f64;
        let mut mispredicts = 0.0f64;
        for _ in 0..BRANCH_SAMPLES {
            let taken = if self.rng.unit_f64() < state.region.branch_noise {
                self.rng.next_u64() & 1 == 1
            } else {
                // Bresenham: deterministic repeating pattern at the bias.
                let err = &mut state.branch_err[block_idx];
                *err += block.taken_bias;
                if *err >= 1.0 {
                    *err -= 1.0;
                    true
                } else {
                    false
                }
            };
            if !self.branches.observe(block.pc, taken) {
                mispredicts += branch_scale;
            }
        }

        let counts = EventCounts {
            instructions: insns,
            il1_misses: il1_misses.round() as u64,
            dl1_misses: dl1_misses.round() as u64,
            l2_misses: l2_misses.round() as u64,
            tlb_misses: tlb_misses.round() as u64,
            branch_mispredictions: mispredicts.round() as u64,
        };
        (
            BranchEvent::new(block.pc, block.insns),
            self.timing.cycles(&counts),
            counts,
        )
    }

    /// Advances to the next `(region, instructions)` run; returns `false`
    /// at end of program.
    fn advance_run(&mut self) -> bool {
        while self.run_remaining == 0 {
            if self.run_cursor >= self.runs.len() {
                return false;
            }
            let (region, insns) = self.runs[self.run_cursor];
            self.run_cursor += 1;
            self.run_remaining = insns;
            // Entering a region restarts its block cursor so signatures are
            // stable across visits.
            self.regions[region].cursor = 0;
        }
        true
    }

    fn current_region(&self) -> usize {
        self.runs[self.run_cursor - 1].0
    }

    /// Sets the number of active data-cache ways for subsequent execution
    /// — the hook used by phase-guided cache reconfiguration policies
    /// (lines disabled by the change are invalidated, as in selective
    /// cache ways hardware).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the configured associativity.
    pub fn set_dl1_ways(&mut self, ways: usize) {
        self.memory.dl1_mut().set_active_ways(ways);
    }

    /// Currently active data-cache ways.
    pub fn dl1_ways(&self) -> usize {
        self.memory.dl1().active_ways()
    }
}

impl IntervalSource for WorkloadSim {
    fn next_interval(&mut self, on_event: &mut dyn FnMut(BranchEvent)) -> Option<IntervalSummary> {
        if self.finished {
            return None;
        }
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let mut metrics = MetricCounts::default();
        while instructions < self.interval_size {
            if !self.advance_run() {
                self.finished = true;
                break;
            }
            let region = self.current_region();
            let (event, block_cycles, block_counts) = self.execute_block(region);
            let executed = u64::from(event.insns);
            self.run_remaining = self.run_remaining.saturating_sub(executed);
            instructions += executed;
            cycles += block_cycles;
            metrics.add(&MetricCounts {
                il1_misses: block_counts.il1_misses,
                dl1_misses: block_counts.dl1_misses,
                l2_misses: block_counts.l2_misses,
                tlb_misses: block_counts.tlb_misses,
                branch_mispredictions: block_counts.branch_mispredictions,
            });
            on_event(event);
        }
        if instructions == 0 {
            return None;
        }
        let summary =
            IntervalSummary::new(self.next_index, instructions, cycles).with_metrics(metrics);
        self.next_index += 1;
        Some(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Region, StreamSpec};

    fn small_benchmark() -> Benchmark {
        let cached = Region::loop_nest(
            "cached",
            0x40_0000,
            4,
            200,
            StreamSpec::Strided {
                stride: 8,
                working_set: 4 * 1024, // fits in L1
            },
        );
        let missy = Region::loop_nest(
            "missy",
            0x80_0000,
            4,
            200,
            StreamSpec::PointerChase {
                nodes: 1 << 16,
                node_bytes: 64, // 4MB: far exceeds L2
            },
        )
        .with_loads_per_insn(0.35);
        Benchmark::new(
            "toy",
            vec![cached, missy],
            ScriptNode::repeat(
                4,
                ScriptNode::Seq(vec![
                    ScriptNode::run(0, 300_000),
                    ScriptNode::run(1, 300_000),
                ]),
            ),
        )
    }

    fn params() -> WorkloadParams {
        WorkloadParams {
            interval_size: 100_000,
            ..Default::default()
        }
    }

    #[test]
    fn produces_expected_interval_count() {
        let b = small_benchmark();
        let summaries = b.simulate(&params()).drain_summaries();
        // 2.4M instructions at 100k per interval = 24 intervals.
        assert!((23..=25).contains(&summaries.len()), "{}", summaries.len());
    }

    #[test]
    fn cpi_differs_between_cached_and_memory_bound_regions() {
        let b = small_benchmark();
        let summaries = b.simulate(&params()).drain_summaries();
        // Intervals 0..2 run the cached region; 3..5 the pointer chase.
        let cached_cpi = summaries[1].cpi();
        let missy_cpi = summaries[4].cpi();
        assert!(
            missy_cpi > cached_cpi * 2.0,
            "memory-bound region must be much slower: {cached_cpi} vs {missy_cpi}"
        );
    }

    #[test]
    fn same_region_intervals_have_similar_cpi() {
        let b = small_benchmark();
        let summaries = b.simulate(&params()).drain_summaries();
        // Intervals 1 and 2 are both mid-run in the cached region.
        let a = summaries[1].cpi();
        let c = summaries[2].cpi();
        assert!(
            (a - c).abs() / a < 0.2,
            "same region, similar CPI: {a} vs {c}"
        );
    }

    #[test]
    fn events_carry_region_pcs() {
        let b = small_benchmark();
        let mut sim = b.simulate(&params());
        let mut pcs = std::collections::BTreeSet::new();
        sim.next_interval(&mut |ev| {
            pcs.insert(ev.pc);
        });
        // First interval executes the cached region's blocks only.
        assert!(pcs.iter().all(|&pc| (0x40_0000..0x41_0000).contains(&pc)));
        assert_eq!(pcs.len(), 4);
    }

    #[test]
    fn simulation_is_deterministic() {
        let b = small_benchmark();
        let a: Vec<_> = b.simulate(&params()).drain_summaries();
        let c: Vec<_> = b.simulate(&params()).drain_summaries();
        assert_eq!(a, c);
    }

    #[test]
    fn length_scale_shrinks_program() {
        let b = small_benchmark();
        let mut p = params();
        p.length_scale = 0.25;
        let scaled_len = b.simulate(&p).drain_summaries().len();
        let full_len = b.simulate(&params()).drain_summaries().len();
        assert!(scaled_len < full_len / 2, "{scaled_len} vs {full_len}");
    }

    #[test]
    fn reducing_dl1_ways_raises_cpi_for_cache_sensitive_code() {
        // A 12KB working set (3 lines per DL1 set) fits 4 ways but
        // thrashes a 1-way (4KB) cache.
        let region = Region::loop_nest(
            "assoc-sensitive",
            0x40_0000,
            4,
            200,
            StreamSpec::Strided {
                stride: 32,
                working_set: 12 * 1024,
            },
        )
        .with_loads_per_insn(0.4);
        let b = Benchmark::new("ways", vec![region], ScriptNode::run(0, 400_000));
        let run = |ways: usize| {
            let mut sim = b.simulate(&params());
            sim.set_dl1_ways(ways);
            assert_eq!(sim.dl1_ways(), ways);
            // Second interval (warm) of the cached region.
            sim.next_interval(&mut |_| {});
            sim.next_interval(&mut |_| {}).unwrap().cpi()
        };
        let full = run(4);
        let one = run(1);
        assert!(
            one > full,
            "fewer ways must not speed things up: {one} vs {full}"
        );
    }

    #[test]
    #[should_panic(expected = "references region")]
    fn script_validation_catches_bad_region() {
        Benchmark::new(
            "bad",
            vec![Region::loop_nest(
                "only",
                0,
                1,
                10,
                StreamSpec::Random { working_set: 64 },
            )],
            ScriptNode::run(3, 100),
        );
    }

    #[test]
    fn expected_instructions_scales() {
        let b = small_benchmark();
        let p = params();
        let full = b.expected_instructions(&p);
        let mut half = p;
        half.length_scale = 0.5;
        assert!((b.expected_instructions(&half) - full / 2.0).abs() < 1.0);
    }
}
