//! The eleven benchmark/input models of the paper's methodology
//! (Section 3), rebuilt as synthetic equivalents.
//!
//! Each model reproduces the *structural* properties the paper documents
//! for its benchmark — phase count, run lengths, hierarchy, transition
//! noisiness, and data-dependent behaviour — because those structures are
//! what every figure in the evaluation measures. See the crate docs and
//! DESIGN.md §2 for the property-by-property mapping.

use serde::{Deserialize, Serialize};

use crate::region::{Block, Region, StreamSpec};
use crate::script::ScriptNode;
use crate::sim::{Benchmark, WorkloadParams};

/// One million instructions — one interval at the default
/// [`WorkloadParams::interval_size`]. Script durations below are written in
/// these units so "`80 * M`" reads as "approximately 80 intervals".
const M: u64 = 1_000_000;

/// Bumped whenever any benchmark model changes, so downstream trace caches
/// (keyed on parameters + this version) never serve stale simulations.
pub const MODEL_VERSION: u32 = 2;

/// The benchmark/input pairs of the paper's Section 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BenchmarkKind {
    Ammp,
    Bzip2Graphic,
    Bzip2Program,
    Galgel,
    Gcc166,
    GccScilab,
    GzipGraphic,
    GzipProgram,
    Mcf,
    PerlDiffmail,
    PerlSplitmail,
}

impl BenchmarkKind {
    /// All eleven benchmarks in the paper's plotting order.
    pub const ALL: [BenchmarkKind; 11] = [
        BenchmarkKind::Ammp,
        BenchmarkKind::Bzip2Graphic,
        BenchmarkKind::Bzip2Program,
        BenchmarkKind::Galgel,
        BenchmarkKind::Gcc166,
        BenchmarkKind::GccScilab,
        BenchmarkKind::GzipGraphic,
        BenchmarkKind::GzipProgram,
        BenchmarkKind::Mcf,
        BenchmarkKind::PerlDiffmail,
        BenchmarkKind::PerlSplitmail,
    ];

    /// The paper's abbreviated label (e.g. `"bzip2/g"`).
    pub fn label(self) -> &'static str {
        match self {
            BenchmarkKind::Ammp => "ammp",
            BenchmarkKind::Bzip2Graphic => "bzip2/g",
            BenchmarkKind::Bzip2Program => "bzip2/p",
            BenchmarkKind::Galgel => "galgel",
            BenchmarkKind::Gcc166 => "gcc/1",
            BenchmarkKind::GccScilab => "gcc/s",
            BenchmarkKind::GzipGraphic => "gzip/g",
            BenchmarkKind::GzipProgram => "gzip/p",
            BenchmarkKind::Mcf => "mcf",
            BenchmarkKind::PerlDiffmail => "perl/d",
            BenchmarkKind::PerlSplitmail => "perl/s",
        }
    }

    /// Builds the benchmark model. `params` supplies the model seed (the
    /// durations themselves are fixed; scale at simulation time with
    /// [`WorkloadParams::length_scale`]).
    pub fn build(self, params: &WorkloadParams) -> Benchmark {
        let _ = params; // models are deterministic; seed applies at simulate()
        match self {
            BenchmarkKind::Ammp => ammp(),
            BenchmarkKind::Bzip2Graphic => bzip2(true),
            BenchmarkKind::Bzip2Program => bzip2(false),
            BenchmarkKind::Galgel => galgel(),
            BenchmarkKind::Gcc166 => gcc(true),
            BenchmarkKind::GccScilab => gcc(false),
            BenchmarkKind::GzipGraphic => gzip(true),
            BenchmarkKind::GzipProgram => gzip(false),
            BenchmarkKind::Mcf => mcf(),
            BenchmarkKind::PerlDiffmail => perl_diffmail(),
            BenchmarkKind::PerlSplitmail => perl_splitmail(),
        }
    }
}

impl core::fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a benchmark label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    label: String,
}

impl core::fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown benchmark '{}' (expected one of: {})",
            self.label,
            BenchmarkKind::ALL
                .iter()
                .map(|k| k.label())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl std::str::FromStr for BenchmarkKind {
    type Err = ParseBenchmarkError;

    /// Parses the paper's abbreviated label (e.g. `"bzip2/g"`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBenchmarkError`] for unknown labels.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BenchmarkKind::ALL
            .into_iter()
            .find(|k| k.label() == s)
            .ok_or_else(|| ParseBenchmarkError {
                label: s.to_owned(),
            })
    }
}

/// Builds a code-sharing variant of `base`: same blocks (optionally with a
/// few appended) over a different data stream — the "same code, different
/// data" situation that motivates adaptive thresholds (mcf, perl/s).
fn variant_of(base: &Region, name: &str, extra_blocks: usize, stream: StreamSpec) -> Region {
    let mut r = base.clone();
    r.name = name.to_owned();
    r.stream = stream;
    let last_pc = r.blocks.last().expect("regions are non-empty").pc;
    for i in 0..extra_blocks as u64 {
        r.blocks.push(Block {
            pc: last_pc + 0x80 * (i + 1),
            insns: 180,
            taken_bias: 0.8,
        });
    }
    r
}

/// `ammp`: a molecular-dynamics FP code with a few long, very stable
/// phases (force computation dominates; neighbor-list rebuilds and
/// integration punctuate it).
fn ammp() -> Benchmark {
    let force = Region::loop_nest(
        "force",
        0x0040_0000,
        8,
        240,
        StreamSpec::Strided {
            stride: 24,
            working_set: 192 * 1024, // spills L2 lightly
        },
    )
    .with_loads_per_insn(0.34);
    let neighbor = Region::loop_nest(
        "neighbor",
        0x0050_0000,
        6,
        200,
        StreamSpec::Random {
            working_set: 2 * 1024 * 1024,
        },
    )
    .with_loads_per_insn(0.30)
    .with_branch_noise(0.15);
    let integrate = Region::loop_nest(
        "integrate",
        0x0060_0000,
        4,
        220,
        StreamSpec::Strided {
            stride: 8,
            working_set: 48 * 1024,
        },
    );
    Benchmark::new(
        "ammp",
        vec![force, neighbor, integrate],
        ScriptNode::repeat(
            25,
            ScriptNode::Seq(vec![
                ScriptNode::run(0, 60 * M),
                ScriptNode::run(1, 8 * M),
                ScriptNode::run(2, 12 * M),
            ]),
        ),
    )
}

/// `bzip2`: "complex hierarchical phase patterns" — a per-input-block
/// sort → MTF → Huffman pipeline nested inside a file loop. The two inputs
/// differ in block sizes and rhythm.
fn bzip2(graphic: bool) -> Benchmark {
    let io = Region::loop_nest(
        "io",
        0x0040_0000,
        3,
        160,
        StreamSpec::Strided {
            stride: 64,
            working_set: 512 * 1024,
        },
    );
    let sort = Region::loop_nest(
        "sort",
        0x0048_0000,
        10,
        200,
        StreamSpec::Random {
            working_set: 900 * 1024,
        },
    )
    .with_loads_per_insn(0.36)
    .with_branch_noise(0.25);
    let mtf = Region::loop_nest(
        "mtf",
        0x0052_0000,
        5,
        180,
        StreamSpec::Strided {
            stride: 4,
            working_set: 64 * 1024,
        },
    );
    let huffman = Region::loop_nest(
        "huffman",
        0x005A_0000,
        6,
        170,
        StreamSpec::Strided {
            stride: 16,
            working_set: 128 * 1024,
        },
    )
    .with_branch_noise(0.20);

    let (name, files, blocks_per_file, sort_lo, sort_hi, mtf_len, huff_len) = if graphic {
        ("bzip2/g", 14, 3, 15 * M, 25 * M, 6 * M, 5 * M)
    } else {
        ("bzip2/p", 20, 2, 10 * M, 18 * M, 5 * M, 4 * M)
    };
    Benchmark::new(
        name,
        vec![io, sort, mtf, huffman],
        ScriptNode::repeat(
            files,
            ScriptNode::Seq(vec![
                ScriptNode::run(0, 2 * M),
                ScriptNode::repeat(
                    blocks_per_file,
                    ScriptNode::Seq(vec![
                        ScriptNode::run_var(1, sort_lo, sort_hi),
                        ScriptNode::run(2, mtf_len),
                        ScriptNode::run(3, huff_len),
                    ]),
                ),
            ]),
        ),
    )
}

/// `galgel`: the hardest FP benchmark to classify — several solver phases
/// whose code partially *overlaps* (shared kernels), yielding signatures
/// that sit near the similarity threshold.
fn galgel() -> Benchmark {
    // A shared bank of FP kernels plus per-phase private blocks.
    let shared_base = 0x0040_0000u64;
    let make_phase = |i: u64, ws: u64| -> Region {
        let mut blocks = Vec::new();
        // 5 shared kernel blocks (same PCs in every phase).
        for s in 0..5u64 {
            blocks.push(Block {
                pc: shared_base + s * 0x80,
                insns: 220,
                taken_bias: 0.85,
            });
        }
        // 5 private blocks for this phase.
        for p in 0..5u64 {
            blocks.push(Block {
                pc: 0x0050_0000 + i * 0x4000 + p * 0x80,
                insns: 200,
                taken_bias: 0.85,
            });
        }
        Region {
            name: format!("solve{i}"),
            blocks,
            stream: StreamSpec::Strided {
                stride: 8,
                working_set: ws,
            },
            loads_per_insn: 0.33,
            branches_per_insn: 0.12,
            branch_noise: 0.05,
            data_base: 0x2000_0000 + i * 0x0100_0000,
        }
    };
    let regions: Vec<Region> = (0..6)
        .map(|i| make_phase(i, (32 * 1024) << i)) // 32K .. 1M working sets
        .collect();
    let options: Vec<(ScriptNode, f64)> = (0..6)
        .map(|i| (ScriptNode::run_var(i, 5 * M, 20 * M), 1.0))
        .collect();
    Benchmark::new(
        "galgel",
        regions,
        ScriptNode::repeat(120, ScriptNode::Choose(options)),
    )
}

/// `gcc`: many short phases and frequent transitions; per-function
/// processing makes run lengths irregular. The scilab input is even
/// choppier, with many behaviours that never recur often enough to become
/// stable phases (~30% transition time at min-count 8).
fn gcc(input_166: bool) -> Benchmark {
    let names = [
        "lex", "parse", "tree", "rtlgen", "jump", "cse", "loop", "sched", "regalloc", "reload",
        "final", "emit", "dataflow", "gcse", "peephole", "debugout",
    ];
    let regions: Vec<Region> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Region::loop_nest(
                name,
                0x0040_0000 + (i as u64) * 0x2_0000,
                6 + i % 4,
                150 + (i as u32 % 5) * 30,
                StreamSpec::Random {
                    working_set: (96 + 64 * (i as u64 % 7)) * 1024,
                },
            )
            .with_branch_noise(0.30)
            .with_loads_per_insn(0.30)
        })
        .collect();

    let (name, reps, lo, hi, n_opts) = if input_166 {
        ("gcc/1", 260, 2 * M, 7 * M, 10)
    } else {
        ("gcc/s", 340, M, 4 * M, 16)
    };
    let options: Vec<(ScriptNode, f64)> = (0..n_opts)
        .map(|i| {
            // Each "function" is a short pipeline of 1-2 pass regions.
            let node = if i % 3 == 0 {
                ScriptNode::Seq(vec![
                    ScriptNode::run_var(i, lo, hi),
                    ScriptNode::run_var((i + 1) % n_opts, lo, hi / 2),
                ])
            } else {
                ScriptNode::run_var(i, lo, hi)
            };
            (node, 1.0 + (i % 4) as f64)
        })
        .collect();
    Benchmark::new(
        name,
        regions,
        ScriptNode::repeat(reps, ScriptNode::Choose(options)),
    )
}

/// `gzip`: long stable deflate stretches; the graphic input has a few
/// exceptionally long phases (~40% of changes land in long runs).
fn gzip(graphic: bool) -> Benchmark {
    let deflate = Region::loop_nest(
        "deflate",
        0x0040_0000,
        9,
        210,
        StreamSpec::Strided {
            stride: 32,
            working_set: 320 * 1024,
        },
    )
    .with_loads_per_insn(0.32);
    let inflate = Region::loop_nest(
        "inflate",
        0x004A_0000,
        7,
        190,
        StreamSpec::Strided {
            stride: 16,
            working_set: 128 * 1024,
        },
    );
    let crc = Region::loop_nest(
        "crc",
        0x0052_0000,
        2,
        240,
        StreamSpec::Strided {
            stride: 8,
            working_set: 16 * 1024,
        },
    );

    if graphic {
        Benchmark::new(
            "gzip/g",
            vec![deflate, inflate, crc],
            ScriptNode::repeat(
                3,
                ScriptNode::Seq(vec![
                    ScriptNode::run(0, 200 * M),
                    ScriptNode::run(2, 3 * M),
                    ScriptNode::run(1, 50 * M),
                    ScriptNode::run(2, 3 * M),
                ]),
            ),
        )
    } else {
        Benchmark::new(
            "gzip/p",
            vec![deflate, inflate, crc],
            ScriptNode::repeat(
                12,
                ScriptNode::Seq(vec![
                    ScriptNode::run(0, 60 * M),
                    ScriptNode::run(2, 2 * M),
                    ScriptNode::run(1, 25 * M),
                    ScriptNode::run(2, 2 * M),
                    ScriptNode::run_var(0, 5 * M, 12 * M),
                ]),
            ),
        )
    }
}

/// `mcf`: pointer-chasing network simplex with a large miss rate. The
/// solver runs the *same code* over growing data footprints — signatures
/// stay within the default 25% similarity threshold while CPI diverges,
/// which is exactly the case the paper's adaptive threshold splits.
fn mcf() -> Benchmark {
    let simplex_small = Region::loop_nest(
        "simplex-small",
        0x0040_0000,
        10,
        190,
        StreamSpec::PointerChase {
            nodes: 4 * 1024, // 256KB of 64B nodes: mostly L2-resident
            node_bytes: 64,
        },
    )
    .with_loads_per_insn(0.30)
    .with_branch_noise(0.20);
    let simplex_large = variant_of(
        &simplex_small,
        "simplex-large",
        2,
        StreamSpec::PointerChase {
            nodes: 64 * 1024, // 4MB: chase steps miss to memory
            node_bytes: 64,
        },
    );
    let refactor = Region::loop_nest(
        "refactor",
        0x0050_0000,
        5,
        210,
        StreamSpec::Strided {
            stride: 64,
            working_set: 1024 * 1024,
        },
    );
    Benchmark::new(
        "mcf",
        vec![simplex_small, simplex_large, refactor],
        ScriptNode::repeat(
            10,
            ScriptNode::Seq(vec![
                ScriptNode::run(0, 50 * M),
                ScriptNode::run(1, 70 * M),
                ScriptNode::run(2, 18 * M),
            ]),
        ),
    )
}

/// `perl/diffmail`: a comparatively short run dominated by a few very long
/// interpreter phases (the paper singles it out for exceptionally high
/// average phase lengths).
fn perl_diffmail() -> Benchmark {
    let interp = Region::loop_nest(
        "interp",
        0x0040_0000,
        12,
        180,
        StreamSpec::Random {
            working_set: 384 * 1024,
        },
    )
    .with_branch_noise(0.15);
    let regex = Region::loop_nest(
        "regex",
        0x004C_0000,
        6,
        200,
        StreamSpec::Strided {
            stride: 4,
            working_set: 96 * 1024,
        },
    );
    let gc = Region::loop_nest(
        "gc",
        0x0054_0000,
        4,
        190,
        StreamSpec::Random {
            working_set: 1536 * 1024,
        },
    );
    Benchmark::new(
        "perl/d",
        vec![interp, regex, gc],
        ScriptNode::Seq(vec![
            ScriptNode::run(0, 300 * M),
            ScriptNode::run(1, 60 * M),
            ScriptNode::run(0, 120 * M),
            ScriptNode::run(2, 10 * M),
        ]),
    )
}

/// `perl/splitmail`: interpreter phases that run the same code over two
/// very different mailbox footprints — the second benchmark the paper
/// calls out as benefiting from dynamic threshold tightening.
fn perl_splitmail() -> Benchmark {
    let interp_small = Region::loop_nest(
        "interp-small",
        0x0040_0000,
        12,
        180,
        StreamSpec::Random {
            working_set: 192 * 1024,
        },
    )
    .with_branch_noise(0.15);
    let interp_large = variant_of(
        &interp_small,
        "interp-large",
        1,
        StreamSpec::Random {
            working_set: 6 * 1024 * 1024,
        },
    );
    let regex = Region::loop_nest(
        "regex",
        0x004C_0000,
        6,
        200,
        StreamSpec::Strided {
            stride: 4,
            working_set: 96 * 1024,
        },
    );
    let io = Region::loop_nest(
        "io",
        0x0054_0000,
        3,
        170,
        StreamSpec::Strided {
            stride: 64,
            working_set: 256 * 1024,
        },
    );
    Benchmark::new(
        "perl/s",
        vec![interp_small, interp_large, regex, io],
        ScriptNode::repeat(
            8,
            ScriptNode::Seq(vec![
                ScriptNode::run(0, 60 * M),
                ScriptNode::run_var(2, 5 * M, 10 * M),
                ScriptNode::run(1, 50 * M),
                ScriptNode::run(3, 5 * M),
            ]),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eleven_models_build() {
        let params = WorkloadParams::default();
        for kind in BenchmarkKind::ALL {
            let b = kind.build(&params);
            assert_eq!(b.name, kind.label());
            assert!(!b.regions.is_empty());
            assert!(b.expected_instructions(&params) > 0.0);
        }
    }

    #[test]
    fn labels_match_paper_abbreviations() {
        let labels: Vec<_> = BenchmarkKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "ammp", "bzip2/g", "bzip2/p", "galgel", "gcc/1", "gcc/s", "gzip/g", "gzip/p",
                "mcf", "perl/d", "perl/s"
            ]
        );
    }

    #[test]
    fn expected_lengths_are_plausible() {
        // Full-scale programs should span hundreds to a few thousand
        // 1M-instruction intervals — comparable in structure to the paper's
        // interval counts.
        let params = WorkloadParams::default();
        for kind in BenchmarkKind::ALL {
            let b = kind.build(&params);
            let intervals = b.expected_instructions(&params) / params.interval_size as f64;
            assert!(
                (300.0..4000.0).contains(&intervals),
                "{}: {intervals:.0} intervals",
                kind.label()
            );
        }
    }

    #[test]
    fn labels_parse_back() {
        for kind in BenchmarkKind::ALL {
            assert_eq!(kind.label().parse::<BenchmarkKind>(), Ok(kind));
        }
        let err = "nonsense".parse::<BenchmarkKind>().unwrap_err();
        assert!(err.to_string().contains("nonsense"));
        assert!(err.to_string().contains("bzip2/g"));
    }

    #[test]
    fn perl_d_is_among_the_shortest() {
        let params = WorkloadParams::default();
        let perl_d = BenchmarkKind::PerlDiffmail
            .build(&params)
            .expected_instructions(&params);
        for kind in [
            BenchmarkKind::Ammp,
            BenchmarkKind::Mcf,
            BenchmarkKind::Gcc166,
        ] {
            assert!(perl_d < kind.build(&params).expected_instructions(&params));
        }
    }

    #[test]
    fn mcf_solver_variants_share_code() {
        let params = WorkloadParams::default();
        let mcf = BenchmarkKind::Mcf.build(&params);
        let small = &mcf.regions[0];
        let large = &mcf.regions[1];
        // All of the small solver's blocks appear in the large variant.
        for b in &small.blocks {
            assert!(large.blocks.contains(b), "shared code block {b:?}");
        }
        assert_ne!(small.stream, large.stream, "different data footprints");
    }

    #[test]
    fn galgel_phases_share_kernel_blocks() {
        let params = WorkloadParams::default();
        let galgel = BenchmarkKind::Galgel.build(&params);
        let shared: Vec<_> = galgel.regions[0].blocks[..5].to_vec();
        for region in &galgel.regions[1..] {
            assert_eq!(&region.blocks[..5], &shared[..], "shared FP kernels");
        }
    }

    #[test]
    fn gcc_scilab_is_choppier_than_166() {
        // gcc/s: more repetitions of shorter runs.
        let params = WorkloadParams::default();
        let g1 = BenchmarkKind::Gcc166.build(&params);
        let gs = BenchmarkKind::GccScilab.build(&params);
        // Average run length estimate = expected instructions / repetitions.
        let avg = |b: &Benchmark, reps: f64| b.expected_instructions(&params) / reps;
        assert!(avg(&gs, 340.0) < avg(&g1, 260.0));
    }
}
