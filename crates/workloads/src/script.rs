//! Hierarchical phase scripts: the long-run structure of a benchmark.

use serde::{Deserialize, Serialize};
use tpcp_uarch::stream::SplitMix64;

/// A node of a benchmark's phase script.
///
/// Scripts compose runs of regions into the hierarchical, repetitive
/// structures real programs exhibit: bzip2's per-input-block
/// sort→mtf→huffman pipeline nested in a file loop, gcc's irregular
/// per-function alternation, gzip's long deflate stretches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptNode {
    /// Execute region `region` for exactly `instructions` instructions.
    Run {
        /// Region index into the benchmark's region list.
        region: usize,
        /// Duration in instructions.
        instructions: u64,
    },
    /// Execute region `region` for a seeded-uniform duration in
    /// `[min_instructions, max_instructions]`.
    RunVar {
        /// Region index.
        region: usize,
        /// Minimum duration in instructions.
        min_instructions: u64,
        /// Maximum duration in instructions.
        max_instructions: u64,
    },
    /// Execute children in order.
    Seq(Vec<ScriptNode>),
    /// Execute the body `times` times.
    Repeat {
        /// Repetition count.
        times: u64,
        /// The repeated body.
        body: Box<ScriptNode>,
    },
    /// Pick one child at random (seeded) with the given weights, each time
    /// this node is reached.
    Choose(Vec<(ScriptNode, f64)>),
}

impl ScriptNode {
    /// Convenience constructor for [`ScriptNode::Run`].
    pub fn run(region: usize, instructions: u64) -> Self {
        ScriptNode::Run {
            region,
            instructions,
        }
    }

    /// Convenience constructor for [`ScriptNode::RunVar`].
    pub fn run_var(region: usize, min_instructions: u64, max_instructions: u64) -> Self {
        assert!(
            min_instructions <= max_instructions,
            "min duration must not exceed max"
        );
        ScriptNode::RunVar {
            region,
            min_instructions,
            max_instructions,
        }
    }

    /// Convenience constructor for [`ScriptNode::Repeat`].
    pub fn repeat(times: u64, body: ScriptNode) -> Self {
        ScriptNode::Repeat {
            times,
            body: Box::new(body),
        }
    }

    /// Total instructions this script expands to, using the midpoint for
    /// variable runs and the weighted mean for choices (an estimate for
    /// sizing experiments).
    pub fn expected_instructions(&self) -> f64 {
        match self {
            ScriptNode::Run { instructions, .. } => *instructions as f64,
            ScriptNode::RunVar {
                min_instructions,
                max_instructions,
                ..
            } => (*min_instructions + *max_instructions) as f64 / 2.0,
            ScriptNode::Seq(children) => {
                children.iter().map(ScriptNode::expected_instructions).sum()
            }
            ScriptNode::Repeat { times, body } => *times as f64 * body.expected_instructions(),
            ScriptNode::Choose(options) => {
                let total_w: f64 = options.iter().map(|(_, w)| w).sum();
                if total_w <= 0.0 {
                    return 0.0;
                }
                options
                    .iter()
                    .map(|(n, w)| n.expected_instructions() * w / total_w)
                    .sum()
            }
        }
    }

    /// Scales every duration in the script by `factor` (used to produce
    /// reduced-length runs for tests and quick experiments). Durations are
    /// floored at one instruction; repeat counts are preserved.
    pub fn scaled(&self, factor: f64) -> ScriptNode {
        assert!(factor > 0.0, "scale factor must be positive");
        let s = |v: u64| ((v as f64 * factor).round() as u64).max(1);
        match self {
            ScriptNode::Run {
                region,
                instructions,
            } => ScriptNode::Run {
                region: *region,
                instructions: s(*instructions),
            },
            ScriptNode::RunVar {
                region,
                min_instructions,
                max_instructions,
            } => ScriptNode::RunVar {
                region: *region,
                min_instructions: s(*min_instructions),
                max_instructions: s(*max_instructions),
            },
            ScriptNode::Seq(children) => {
                ScriptNode::Seq(children.iter().map(|c| c.scaled(factor)).collect())
            }
            ScriptNode::Repeat { times, body } => ScriptNode::Repeat {
                times: *times,
                body: Box::new(body.scaled(factor)),
            },
            ScriptNode::Choose(options) => ScriptNode::Choose(
                options
                    .iter()
                    .map(|(n, w)| (n.scaled(factor), *w))
                    .collect(),
            ),
        }
    }

    /// Largest region index referenced by the script.
    pub fn max_region(&self) -> usize {
        match self {
            ScriptNode::Run { region, .. } | ScriptNode::RunVar { region, .. } => *region,
            ScriptNode::Seq(children) => children
                .iter()
                .map(ScriptNode::max_region)
                .max()
                .unwrap_or(0),
            ScriptNode::Repeat { body, .. } => body.max_region(),
            ScriptNode::Choose(options) => options
                .iter()
                .map(|(n, _)| n.max_region())
                .max()
                .unwrap_or(0),
        }
    }
}

/// Lazily flattens a [`ScriptNode`] into a stream of `(region,
/// instructions)` runs.
///
/// # Example
///
/// ```
/// use tpcp_workloads::{ScriptIter, ScriptNode};
///
/// let script = ScriptNode::repeat(2, ScriptNode::Seq(vec![
///     ScriptNode::run(0, 100),
///     ScriptNode::run(1, 50),
/// ]));
/// let runs: Vec<_> = ScriptIter::new(&script, 42).collect();
/// assert_eq!(runs, vec![(0, 100), (1, 50), (0, 100), (1, 50)]);
/// ```
#[derive(Debug, Clone)]
pub struct ScriptIter<'a> {
    stack: Vec<Frame<'a>>,
    rng: SplitMix64,
}

#[derive(Debug, Clone)]
enum Frame<'a> {
    Node(&'a ScriptNode),
    RepeatRest {
        remaining: u64,
        body: &'a ScriptNode,
    },
}

impl<'a> ScriptIter<'a> {
    /// Creates an iterator over `script` with the given seed driving
    /// `RunVar` durations and `Choose` selections.
    pub fn new(script: &'a ScriptNode, seed: u64) -> Self {
        Self {
            stack: vec![Frame::Node(script)],
            rng: SplitMix64::new(seed),
        }
    }
}

impl Iterator for ScriptIter<'_> {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(frame) = self.stack.pop() {
            match frame {
                Frame::Node(node) => match node {
                    ScriptNode::Run {
                        region,
                        instructions,
                    } => return Some((*region, *instructions)),
                    ScriptNode::RunVar {
                        region,
                        min_instructions,
                        max_instructions,
                    } => {
                        let span = max_instructions - min_instructions;
                        let len = min_instructions
                            + if span == 0 {
                                0
                            } else {
                                self.rng.below(span + 1)
                            };
                        return Some((*region, len));
                    }
                    ScriptNode::Seq(children) => {
                        for child in children.iter().rev() {
                            self.stack.push(Frame::Node(child));
                        }
                    }
                    ScriptNode::Repeat { times, body } => {
                        if *times > 0 {
                            self.stack.push(Frame::RepeatRest {
                                remaining: times - 1,
                                body,
                            });
                            self.stack.push(Frame::Node(body));
                        }
                    }
                    ScriptNode::Choose(options) => {
                        if !options.is_empty() {
                            let total: f64 = options.iter().map(|(_, w)| w).sum();
                            let mut pick = self.rng.unit_f64() * total;
                            let mut chosen = &options[options.len() - 1].0;
                            for (node, w) in options {
                                if pick < *w {
                                    chosen = node;
                                    break;
                                }
                                pick -= w;
                            }
                            self.stack.push(Frame::Node(chosen));
                        }
                    }
                },
                Frame::RepeatRest { remaining, body } => {
                    if remaining > 0 {
                        self.stack.push(Frame::RepeatRest {
                            remaining: remaining - 1,
                            body,
                        });
                        self.stack.push(Frame::Node(body));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_preserves_order() {
        let script = ScriptNode::Seq(vec![
            ScriptNode::run(0, 10),
            ScriptNode::run(1, 20),
            ScriptNode::run(2, 30),
        ]);
        let runs: Vec<_> = ScriptIter::new(&script, 0).collect();
        assert_eq!(runs, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn nested_repeat_expands_fully() {
        let script = ScriptNode::repeat(
            3,
            ScriptNode::Seq(vec![
                ScriptNode::run(0, 1),
                ScriptNode::repeat(2, ScriptNode::run(1, 2)),
            ]),
        );
        let runs: Vec<_> = ScriptIter::new(&script, 0).collect();
        assert_eq!(runs.len(), 9);
        assert_eq!(runs[0], (0, 1));
        assert_eq!(runs[1], (1, 2));
        assert_eq!(runs[2], (1, 2));
        assert_eq!(runs[3], (0, 1));
    }

    #[test]
    fn run_var_stays_in_bounds_and_is_seeded() {
        let script = ScriptNode::repeat(50, ScriptNode::run_var(0, 10, 20));
        let a: Vec<_> = ScriptIter::new(&script, 7).collect();
        let b: Vec<_> = ScriptIter::new(&script, 7).collect();
        assert_eq!(a, b, "same seed, same durations");
        assert!(a.iter().all(|&(_, n)| (10..=20).contains(&n)));
        let distinct: std::collections::BTreeSet<u64> = a.iter().map(|&(_, n)| n).collect();
        assert!(distinct.len() > 3, "durations vary");
    }

    #[test]
    fn choose_respects_weights() {
        let script = ScriptNode::repeat(
            1000,
            ScriptNode::Choose(vec![
                (ScriptNode::run(0, 1), 0.9),
                (ScriptNode::run(1, 1), 0.1),
            ]),
        );
        let runs: Vec<_> = ScriptIter::new(&script, 3).collect();
        let zeros = runs.iter().filter(|&&(r, _)| r == 0).count();
        assert!((800..=980).contains(&zeros), "got {zeros} zeros");
    }

    #[test]
    fn expected_instructions_estimates() {
        let script = ScriptNode::repeat(
            10,
            ScriptNode::Seq(vec![
                ScriptNode::run(0, 100),
                ScriptNode::run_var(1, 0, 100),
            ]),
        );
        assert!((script.expected_instructions() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_shrinks_durations_not_structure() {
        let script = ScriptNode::repeat(4, ScriptNode::run(0, 1000));
        let scaled = script.scaled(0.1);
        let runs: Vec<_> = ScriptIter::new(&scaled, 0).collect();
        assert_eq!(runs, vec![(0, 100); 4]);
    }

    #[test]
    fn scaled_floors_at_one_instruction() {
        let script = ScriptNode::run(0, 5);
        if let ScriptNode::Run { instructions, .. } = script.scaled(0.0001) {
            assert_eq!(instructions, 1);
        } else {
            panic!("scaling preserves node type");
        }
    }

    #[test]
    fn max_region_finds_deepest_reference() {
        let script = ScriptNode::Seq(vec![
            ScriptNode::run(1, 1),
            ScriptNode::repeat(2, ScriptNode::Choose(vec![(ScriptNode::run(7, 1), 1.0)])),
        ]);
        assert_eq!(script.max_region(), 7);
    }
}
