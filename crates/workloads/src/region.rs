//! Code regions: the unit of synthetic program structure.

use serde::{Deserialize, Serialize};

/// One basic block of a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Address of the block's terminating branch.
    pub pc: u64,
    /// Instructions in the block (including the branch).
    pub insns: u32,
    /// Probability the terminating branch is taken. Directions are
    /// generated with a deterministic Bresenham accumulator, so a bias of
    /// 0.75 yields the exact repeating pattern T,T,T,N — predictable by the
    /// history-based hardware predictor.
    pub taken_bias: f64,
}

/// The data-side access pattern of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamSpec {
    /// Sequential access with a fixed stride over a circular buffer —
    /// array-walking FP/integer loops.
    Strided {
        /// Stride in bytes between consecutive accesses.
        stride: u64,
        /// Working-set size in bytes (wraps around).
        working_set: u64,
    },
    /// Uniform random access over a working set — hash tables, symbol
    /// tables.
    Random {
        /// Working-set size in bytes.
        working_set: u64,
    },
    /// Pointer chasing over a pseudo-random permutation — mcf-style linked
    /// structures with no spatial locality.
    PointerChase {
        /// Number of nodes in the chase.
        nodes: u64,
        /// Node size in bytes.
        node_bytes: u64,
    },
}

/// A code region: a loop nest with fixed basic blocks, a characteristic
/// memory stream, and branch behaviour.
///
/// Two regions may deliberately share block PCs (same code) while differing
/// in `stream` (different data) — the situation that motivates the paper's
/// adaptive thresholds for `mcf` and `perl/splitmail`.
///
/// # Example
///
/// ```
/// use tpcp_workloads::{Region, StreamSpec};
///
/// let r = Region::loop_nest("kernel", 0x40_0000, 8, 120, StreamSpec::Strided {
///     stride: 8,
///     working_set: 64 * 1024,
/// });
/// assert_eq!(r.blocks.len(), 8);
/// assert!(r.code_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable name (e.g. "simplex", "huffman").
    pub name: String,
    /// The region's basic blocks, executed round-robin.
    pub blocks: Vec<Block>,
    /// Data access pattern.
    pub stream: StreamSpec,
    /// Loads+stores per instruction (typ. 0.2–0.4).
    pub loads_per_insn: f64,
    /// Conditional branches per instruction (typ. 0.1–0.2). Block-ending
    /// branches are modeled individually; this scales their penalty to the
    /// real branch density.
    pub branches_per_insn: f64,
    /// Fraction of branch outcomes replaced by seeded random noise
    /// (0 = fully deterministic pattern, 1 = coin flips).
    pub branch_noise: f64,
    /// Base address of the region's data segment.
    pub data_base: u64,
}

impl Region {
    /// Builds a classic loop nest: `n_blocks` blocks of `insns_per_block`
    /// instructions each, starting at `code_base`, with 85%-taken branches
    /// and sensible default densities.
    pub fn loop_nest(
        name: &str,
        code_base: u64,
        n_blocks: usize,
        insns_per_block: u32,
        stream: StreamSpec,
    ) -> Self {
        assert!(n_blocks > 0, "a region needs at least one block");
        assert!(insns_per_block > 0, "blocks must contain instructions");
        Self {
            name: name.to_owned(),
            blocks: (0..n_blocks as u64)
                .map(|i| Block {
                    pc: code_base + i * 0x80,
                    insns: insns_per_block,
                    taken_bias: 0.85,
                })
                .collect(),
            stream,
            loads_per_insn: 0.22,
            branches_per_insn: 0.15,
            branch_noise: 0.05,
            data_base: 0x1000_0000 + (code_base << 8),
        }
    }

    /// Sets the load density (builder-style).
    pub fn with_loads_per_insn(mut self, v: f64) -> Self {
        self.loads_per_insn = v;
        self
    }

    /// Sets the branch-outcome noise fraction (builder-style).
    pub fn with_branch_noise(mut self, v: f64) -> Self {
        self.branch_noise = v;
        self
    }

    /// Sets the data segment base (builder-style) — lets two regions share
    /// or separate their data explicitly.
    pub fn with_data_base(mut self, base: u64) -> Self {
        self.data_base = base;
        self
    }

    /// Replaces every block's taken bias (builder-style).
    pub fn with_taken_bias(mut self, bias: f64) -> Self {
        for b in &mut self.blocks {
            b.taken_bias = bias;
        }
        self
    }

    /// Total instructions in one pass over all blocks.
    pub fn insns_per_iteration(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.insns)).sum()
    }

    /// Static code footprint in bytes (4 bytes per instruction).
    pub fn code_bytes(&self) -> u64 {
        self.insns_per_iteration() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> StreamSpec {
        StreamSpec::Strided {
            stride: 8,
            working_set: 4096,
        }
    }

    #[test]
    fn loop_nest_lays_out_blocks() {
        let r = Region::loop_nest("x", 0x1000, 4, 100, spec());
        assert_eq!(r.blocks.len(), 4);
        assert_eq!(r.blocks[0].pc, 0x1000);
        assert_eq!(r.blocks[3].pc, 0x1000 + 3 * 0x80);
        assert_eq!(r.insns_per_iteration(), 400);
        assert_eq!(r.code_bytes(), 1600);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_region_rejected() {
        Region::loop_nest("x", 0, 0, 10, spec());
    }

    #[test]
    fn builders_override_defaults() {
        let r = Region::loop_nest("x", 0x1000, 2, 50, spec())
            .with_loads_per_insn(0.5)
            .with_branch_noise(0.3)
            .with_data_base(0xAB)
            .with_taken_bias(0.5);
        assert_eq!(r.loads_per_insn, 0.5);
        assert_eq!(r.branch_noise, 0.3);
        assert_eq!(r.data_base, 0xAB);
        assert!(r.blocks.iter().all(|b| b.taken_bias == 0.5));
    }

    #[test]
    fn shared_code_regions_can_differ_in_data() {
        let a = Region::loop_nest(
            "small",
            0x1000,
            4,
            100,
            StreamSpec::PointerChase {
                nodes: 1 << 10,
                node_bytes: 64,
            },
        );
        let mut b = a.clone();
        b.name = "large".into();
        b.stream = StreamSpec::PointerChase {
            nodes: 1 << 20,
            node_bytes: 64,
        };
        assert_eq!(a.blocks, b.blocks, "same code");
        assert_ne!(a.stream, b.stream, "different data");
    }
}
