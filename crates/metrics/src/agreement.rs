//! Agreement between two phase classifications (e.g. the online classifier
//! vs. a scripted ground truth, or vs. an offline SimPoint clustering).

use std::collections::HashMap;
use std::hash::Hash;

/// Cluster purity of `predicted` against `truth`: for each predicted
/// cluster, the fraction of its members sharing the cluster's majority
/// truth label, weighted by cluster size. 1.0 means every predicted
/// cluster is label-pure; assigning every interval its own cluster also
/// scores 1.0, so read purity together with the cluster count.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use tpcp_metrics::purity;
///
/// let truth = ["a", "a", "b", "b"];
/// assert_eq!(purity(&[1, 1, 2, 2], &truth), 1.0);
/// assert_eq!(purity(&[1, 1, 1, 1], &truth), 0.5);
/// ```
pub fn purity<P, T>(predicted: &[P], truth: &[T]) -> f64
where
    P: Eq + Hash,
    T: Eq + Hash,
{
    assert_eq!(
        predicted.len(),
        truth.len(),
        "classifications must cover the same intervals"
    );
    if predicted.is_empty() {
        return 1.0;
    }
    let mut clusters: HashMap<&P, HashMap<&T, usize>> = HashMap::new();
    for (p, t) in predicted.iter().zip(truth) {
        *clusters.entry(p).or_default().entry(t).or_insert(0) += 1;
    }
    let majority_sum: usize = clusters
        .values()
        .map(|labels| labels.values().copied().max().unwrap_or(0))
        .sum();
    majority_sum as f64 / predicted.len() as f64
}

/// The Rand index between two classifications: the fraction of interval
/// pairs on which the two agree (both same-cluster or both
/// different-cluster). 1.0 is perfect agreement; independent random
/// labelings score well below 1.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use tpcp_metrics::rand_index;
///
/// assert_eq!(rand_index(&[1, 1, 2], &["x", "x", "y"]), 1.0);
/// ```
pub fn rand_index<P, T>(a: &[P], b: &[T]) -> f64
where
    P: Eq,
    T: Eq,
{
    assert_eq!(
        a.len(),
        b.len(),
        "classifications must cover the same intervals"
    );
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            pairs += 1;
            if (a[i] == a[j]) == (b[i] == b[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_classifications_are_perfect() {
        let xs = [1, 2, 3, 1, 2, 3];
        assert_eq!(purity(&xs, &xs), 1.0);
        assert_eq!(rand_index(&xs, &xs), 1.0);
    }

    #[test]
    fn relabeling_does_not_matter() {
        let a = [1, 1, 2, 2, 3];
        let b = ["z", "z", "x", "x", "y"];
        assert_eq!(purity(&a, &b), 1.0);
        assert_eq!(rand_index(&a, &b), 1.0);
    }

    #[test]
    fn merged_clusters_lose_purity() {
        let truth = [1, 1, 2, 2];
        let merged = [7, 7, 7, 7];
        assert_eq!(purity(&merged, &truth), 0.5);
        assert!(rand_index(&merged, &truth) < 1.0);
    }

    #[test]
    fn oversplit_clusters_keep_purity_but_lose_rand() {
        let truth = [1, 1, 1, 1];
        let split = [1, 2, 3, 4];
        assert_eq!(purity(&split, &truth), 1.0);
        assert!(rand_index(&split, &truth) < 0.5);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let empty: [u32; 0] = [];
        assert_eq!(purity(&empty, &empty), 1.0);
        assert_eq!(rand_index(&empty, &empty), 1.0);
        assert_eq!(rand_index(&[1], &[9]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same intervals")]
    fn mismatched_lengths_rejected() {
        purity(&[1, 2], &[1]);
    }
}
