//! Phase run length statistics (Figure 5 and Figure 9, left panel).

use serde::{Deserialize, Serialize};

use tpcp_core::PhaseId;

use crate::stats::Welford;

/// Accumulates a phase ID stream into run-length statistics.
///
/// A *run* is a maximal sequence of consecutive intervals with the same
/// phase ID (the paper's "phase length"). Runs of stable phases and runs of
/// the transition phase are tracked separately, as Figure 5 plots them
/// side by side.
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_metrics::RunAccumulator;
///
/// let mut acc = RunAccumulator::new();
/// for id in [1u32, 1, 1, 0, 2, 2] {
///     acc.observe(PhaseId::new(id));
/// }
/// let stats = acc.finish();
/// assert_eq!(stats.runs().len(), 3);
/// assert!((stats.stable_mean() - 2.5).abs() < 1e-12); // runs of 3 and 2
/// assert!((stats.transition_mean() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunAccumulator {
    current: Option<(PhaseId, u64)>,
    runs: Vec<(PhaseId, u64)>,
}

impl RunAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the next interval's phase.
    pub fn observe(&mut self, phase: PhaseId) {
        match &mut self.current {
            Some((p, n)) if *p == phase => *n += 1,
            Some(prev) => {
                self.runs.push(*prev);
                self.current = Some((phase, 1));
            }
            None => self.current = Some((phase, 1)),
        }
    }

    /// Finalizes (closing the in-progress run) into statistics.
    pub fn finish(mut self) -> RunLengthStats {
        if let Some(last) = self.current.take() {
            self.runs.push(last);
        }
        let mut stable = Welford::new();
        let mut transition = Welford::new();
        for &(phase, len) in &self.runs {
            if phase.is_transition() {
                transition.push(len as f64);
            } else {
                stable.push(len as f64);
            }
        }
        RunLengthStats {
            runs: self.runs,
            stable,
            transition,
        }
    }
}

/// Run-length statistics for one phase classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunLengthStats {
    runs: Vec<(PhaseId, u64)>,
    stable: Welford,
    transition: Welford,
}

impl RunLengthStats {
    /// All runs in order: `(phase, length in intervals)`.
    pub fn runs(&self) -> &[(PhaseId, u64)] {
        &self.runs
    }

    /// Mean length of stable-phase runs, in intervals.
    pub fn stable_mean(&self) -> f64 {
        self.stable.mean()
    }

    /// Standard deviation of stable-phase run lengths.
    pub fn stable_std_dev(&self) -> f64 {
        self.stable.population_std_dev()
    }

    /// Mean length of transition-phase runs, in intervals.
    pub fn transition_mean(&self) -> f64 {
        self.transition.mean()
    }

    /// Standard deviation of transition-phase run lengths.
    pub fn transition_std_dev(&self) -> f64 {
        self.transition.population_std_dev()
    }

    /// Number of phase changes (run boundaries) in the stream.
    pub fn change_count(&self) -> usize {
        self.runs.len().saturating_sub(1)
    }

    /// Histogram of run lengths over arbitrary class boundaries: returns
    /// counts of runs whose length falls in each class as defined by the
    /// classification function.
    pub fn class_histogram<C, F>(&self, classes: &[C], classify: F) -> Vec<u64>
    where
        C: PartialEq,
        F: Fn(u64) -> C,
    {
        let mut counts = vec![0u64; classes.len()];
        for &(_, len) in &self.runs {
            let class = classify(len);
            if let Some(pos) = classes.iter().position(|c| *c == class) {
                counts[pos] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn empty_stream_has_no_runs() {
        let stats = RunAccumulator::new().finish();
        assert!(stats.runs().is_empty());
        assert_eq!(stats.stable_mean(), 0.0);
        assert_eq!(stats.change_count(), 0);
    }

    #[test]
    fn single_run_counted_once() {
        let mut acc = RunAccumulator::new();
        for _ in 0..7 {
            acc.observe(id(1));
        }
        let stats = acc.finish();
        assert_eq!(stats.runs(), &[(id(1), 7)]);
        assert_eq!(stats.stable_mean(), 7.0);
        assert_eq!(stats.stable_std_dev(), 0.0);
    }

    #[test]
    fn alternation_produces_unit_runs() {
        let mut acc = RunAccumulator::new();
        for i in 0..10 {
            acc.observe(id(i % 2 + 1));
        }
        let stats = acc.finish();
        assert_eq!(stats.runs().len(), 10);
        assert_eq!(stats.stable_mean(), 1.0);
        assert_eq!(stats.change_count(), 9);
    }

    #[test]
    fn transition_runs_separated() {
        let mut acc = RunAccumulator::new();
        for p in [1, 1, 0, 0, 0, 2, 2, 2, 2] {
            acc.observe(id(p));
        }
        let stats = acc.finish();
        assert_eq!(stats.stable_mean(), 3.0); // runs 2 and 4
        assert_eq!(stats.transition_mean(), 3.0); // one run of 3
        assert_eq!(stats.transition_std_dev(), 0.0);
    }

    #[test]
    fn reappearing_phase_counts_as_separate_runs() {
        let mut acc = RunAccumulator::new();
        for p in [1, 1, 2, 1, 1, 1] {
            acc.observe(id(p));
        }
        let stats = acc.finish();
        assert_eq!(stats.runs(), &[(id(1), 2), (id(2), 1), (id(1), 3)]);
    }

    #[test]
    fn class_histogram_buckets_runs() {
        let mut acc = RunAccumulator::new();
        for (phase, len) in [(1u32, 3u64), (2, 20), (1, 200), (2, 5)] {
            for _ in 0..len {
                acc.observe(id(phase));
            }
        }
        let stats = acc.finish();
        let classes = ["short", "medium", "long"];
        let hist = stats.class_histogram(&classes, |len| {
            if len < 16 {
                "short"
            } else if len < 128 {
                "medium"
            } else {
                "long"
            }
        });
        assert_eq!(hist, vec![2, 1, 1]);
    }
}
