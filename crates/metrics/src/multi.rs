//! Multi-metric homogeneity: CoV per phase for a *vector* of metrics.
//!
//! The premise behind code-signature phase classification (Sherwood et
//! al., carried into this paper) is that intervals grouped by code behave
//! similarly across **all** architectural metrics, not just CPI. This
//! accumulator evaluates a classification against any metric vector
//! (CPI, cache MPKI, branch MPKI, ...) at once.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use tpcp_core::PhaseId;

use crate::stats::Welford;

/// Accumulates `(phase, metric-vector)` observations.
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_metrics::VectorCovAccumulator;
///
/// let mut acc = VectorCovAccumulator::new(vec!["cpi".into(), "dl1 mpki".into()]);
/// for _ in 0..10 {
///     acc.observe(PhaseId::new(1), &[1.0, 5.0]);
///     acc.observe(PhaseId::new(2), &[3.0, 40.0]);
/// }
/// let s = acc.finish();
/// // Perfectly homogeneous phases on both metrics.
/// assert!(s.weighted_cov(0) < 1e-12);
/// assert!(s.weighted_cov(1) < 1e-12);
/// assert!(s.whole_program_cov(1) > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct VectorCovAccumulator {
    labels: Vec<String>,
    per_phase: BTreeMap<PhaseId, Vec<Welford>>,
    whole: Vec<Welford>,
}

impl VectorCovAccumulator {
    /// Creates an accumulator for the given metric labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn new(labels: Vec<String>) -> Self {
        assert!(!labels.is_empty(), "at least one metric required");
        let n = labels.len();
        Self {
            labels,
            per_phase: BTreeMap::new(),
            whole: vec![Welford::new(); n],
        }
    }

    /// Creates an accumulator for the standard interval metric vector:
    /// CPI followed by each microarchitectural event rate in
    /// [`MetricCounts::LABELS`](tpcp_core::MetricCounts::LABELS) order.
    /// This is the layout fed by the accumulator's
    /// [`PhaseObserver`](tpcp_core::PhaseObserver) implementation.
    pub fn cpi_mpki() -> Self {
        let mut labels = vec!["cpi".to_owned()];
        labels.extend(
            tpcp_core::MetricCounts::LABELS
                .iter()
                .map(|l| format!("{l} mpki")),
        );
        Self::new(labels)
    }

    /// Records one interval.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the label count.
    pub fn observe(&mut self, phase: PhaseId, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.labels.len(),
            "metric vector width must match labels"
        );
        let slots = self
            .per_phase
            .entry(phase)
            .or_insert_with(|| vec![Welford::new(); self.labels.len()]);
        for ((slot, whole), &v) in slots.iter_mut().zip(&mut self.whole).zip(values) {
            slot.push(v);
            whole.push(v);
        }
    }

    /// Finalizes into a summary.
    pub fn finish(self) -> VectorCovSummary {
        VectorCovSummary {
            labels: self.labels,
            per_phase: self.per_phase,
            whole: self.whole,
        }
    }
}

/// Per-metric CoV summary of one classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorCovSummary {
    labels: Vec<String>,
    per_phase: BTreeMap<PhaseId, Vec<Welford>>,
    whole: Vec<Welford>,
}

impl VectorCovSummary {
    /// Metric labels (column order for the index-based accessors).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Execution-weighted per-phase CoV of metric `m`, transition phase
    /// excluded — the Section 3.1 metric generalized beyond CPI.
    pub fn weighted_cov(&self, m: usize) -> f64 {
        let stable: Vec<(&PhaseId, &Vec<Welford>)> = self
            .per_phase
            .iter()
            .filter(|(p, _)| !p.is_transition())
            .collect();
        let total: u64 = stable.iter().map(|(_, w)| w[m].count()).sum();
        if total == 0 {
            return 0.0;
        }
        stable
            .iter()
            .map(|(_, w)| w[m].cov() * w[m].count() as f64 / total as f64)
            .sum()
    }

    /// Whole-program CoV of metric `m`.
    pub fn whole_program_cov(&self, m: usize) -> f64 {
        self.whole[m].cov()
    }

    /// Whole-program mean of metric `m` — used to recognize degenerate
    /// metrics (a near-zero mean makes CoV meaningless: one stray event
    /// produces a CoV in the thousands of percent).
    pub fn whole_program_mean(&self, m: usize) -> f64 {
        self.whole[m].mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn metrics_are_independent_columns() {
        let mut acc = VectorCovAccumulator::new(vec!["a".into(), "b".into()]);
        // Metric a homogeneous within phases, metric b noisy within phase 1.
        for i in 0..10 {
            acc.observe(id(1), &[1.0, f64::from(i % 2) * 10.0]);
            acc.observe(id(2), &[5.0, 3.0]);
        }
        let s = acc.finish();
        assert!(s.weighted_cov(0) < 1e-12);
        assert!(s.weighted_cov(1) > 0.3, "{}", s.weighted_cov(1));
    }

    #[test]
    fn transition_excluded() {
        let mut acc = VectorCovAccumulator::new(vec!["x".into()]);
        acc.observe(PhaseId::TRANSITION, &[100.0]);
        acc.observe(PhaseId::TRANSITION, &[0.1]);
        for _ in 0..5 {
            acc.observe(id(1), &[2.0]);
        }
        let s = acc.finish();
        assert!(s.weighted_cov(0) < 1e-12);
        assert!(s.whole_program_cov(0) > 1.0);
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn ragged_vector_rejected() {
        let mut acc = VectorCovAccumulator::new(vec!["a".into(), "b".into()]);
        acc.observe(id(1), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one metric")]
    fn empty_labels_rejected() {
        VectorCovAccumulator::new(vec![]);
    }
}
