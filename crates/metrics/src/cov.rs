//! Coefficient-of-variation metrics (Section 3.1).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use tpcp_core::PhaseId;

use crate::stats::Welford;

/// Per-phase CPI statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCov {
    /// The phase.
    pub phase: PhaseId,
    /// Intervals classified into the phase.
    pub intervals: u64,
    /// Mean CPI of those intervals.
    pub mean_cpi: f64,
    /// Coefficient of variation of CPI within the phase.
    pub cov: f64,
}

/// Accumulates `(phase, CPI)` observations into a [`CovSummary`].
///
/// # Example
///
/// ```
/// use tpcp_core::PhaseId;
/// use tpcp_metrics::CovAccumulator;
///
/// let mut acc = CovAccumulator::new();
/// acc.observe(PhaseId::new(1), 1.0);
/// acc.observe(PhaseId::new(1), 1.2);
/// acc.observe(PhaseId::TRANSITION, 9.0); // excluded from weighted CoV
/// let s = acc.finish();
/// assert_eq!(s.phases().len(), 2);
/// assert!(s.weighted_cov() < 0.2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CovAccumulator {
    per_phase: BTreeMap<PhaseId, Welford>,
    whole: Welford,
}

impl CovAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one interval's phase and CPI.
    pub fn observe(&mut self, phase: PhaseId, cpi: f64) {
        self.per_phase.entry(phase).or_default().push(cpi);
        self.whole.push(cpi);
    }

    /// Finalizes into a summary.
    pub fn finish(self) -> CovSummary {
        let phases: Vec<PhaseCov> = self
            .per_phase
            .iter()
            .map(|(&phase, w)| PhaseCov {
                phase,
                intervals: w.count(),
                mean_cpi: w.mean(),
                cov: w.cov(),
            })
            .collect();
        CovSummary {
            phases,
            whole: self.whole,
        }
    }
}

/// The paper's CoV summary of one phase classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovSummary {
    phases: Vec<PhaseCov>,
    whole: Welford,
}

impl CovSummary {
    /// Per-phase statistics, ordered by phase ID (transition first).
    pub fn phases(&self) -> &[PhaseCov] {
        &self.phases
    }

    /// The statistics row for one phase, if present.
    pub fn phase(&self, id: PhaseId) -> Option<&PhaseCov> {
        self.phases.iter().find(|p| p.phase == id)
    }

    /// Number of *stable* phases observed (transition excluded).
    pub fn stable_phase_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| !p.phase.is_transition())
            .count()
    }

    /// The overall metric of Section 3.1: each stable phase's CoV weighted
    /// by the fraction of (stable) execution it accounts for, summed.
    ///
    /// Intervals classified into the transition phase are excluded, as in
    /// the paper ("the transition phase is not included in the CPI CoV
    /// calculations").
    pub fn weighted_cov(&self) -> f64 {
        let stable: Vec<&PhaseCov> = self
            .phases
            .iter()
            .filter(|p| !p.phase.is_transition())
            .collect();
        let total: u64 = stable.iter().map(|p| p.intervals).sum();
        if total == 0 {
            return 0.0;
        }
        stable
            .iter()
            .map(|p| p.cov * p.intervals as f64 / total as f64)
            .sum()
    }

    /// CoV of CPI over *all* intervals regardless of phase — the paper's
    /// "Whole Program" baseline (~80% on average for SPEC).
    pub fn whole_program_cov(&self) -> f64 {
        self.whole.cov()
    }

    /// Fraction of intervals classified into the transition phase.
    pub fn transition_fraction(&self) -> f64 {
        let total = self.whole.count();
        if total == 0 {
            return 0.0;
        }
        let transition = self.phase(PhaseId::TRANSITION).map_or(0, |p| p.intervals);
        transition as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> PhaseId {
        PhaseId::new(v)
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = CovAccumulator::new().finish();
        assert_eq!(s.weighted_cov(), 0.0);
        assert_eq!(s.whole_program_cov(), 0.0);
        assert_eq!(s.transition_fraction(), 0.0);
        assert_eq!(s.stable_phase_count(), 0);
    }

    #[test]
    fn homogeneous_phases_score_zero() {
        let mut acc = CovAccumulator::new();
        for _ in 0..5 {
            acc.observe(id(1), 2.0);
            acc.observe(id(2), 8.0);
        }
        let s = acc.finish();
        assert!(s.weighted_cov() < 1e-12);
        assert!(
            s.whole_program_cov() > 0.5,
            "mixing phases is heterogeneous"
        );
    }

    #[test]
    fn weighting_is_by_interval_count() {
        let mut acc = CovAccumulator::new();
        // Phase 1: 90 intervals, CoV 0. Phase 2: 10 intervals with spread.
        for _ in 0..90 {
            acc.observe(id(1), 1.0);
        }
        for i in 0..10 {
            acc.observe(id(2), 1.0 + f64::from(i % 2)); // mean 1.5, std 0.5
        }
        let s = acc.finish();
        let p2_cov = s.phase(id(2)).unwrap().cov;
        let expected = 0.9 * 0.0 + 0.1 * p2_cov;
        assert!((s.weighted_cov() - expected).abs() < 1e-12);
    }

    #[test]
    fn transition_excluded_from_weighted_cov() {
        let mut acc = CovAccumulator::new();
        for _ in 0..10 {
            acc.observe(id(1), 1.0);
        }
        // Wild transition CPIs must not affect the weighted CoV.
        acc.observe(PhaseId::TRANSITION, 100.0);
        acc.observe(PhaseId::TRANSITION, 0.01);
        let s = acc.finish();
        assert!(s.weighted_cov() < 1e-12);
        assert!((s.transition_fraction() - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn stable_phase_count_ignores_transition() {
        let mut acc = CovAccumulator::new();
        acc.observe(PhaseId::TRANSITION, 1.0);
        acc.observe(id(1), 1.0);
        acc.observe(id(2), 1.0);
        let s = acc.finish();
        assert_eq!(s.stable_phase_count(), 2);
        assert_eq!(s.phases().len(), 3);
    }

    #[test]
    fn single_phase_weighted_cov_equals_its_cov() {
        let mut acc = CovAccumulator::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            acc.observe(id(7), x);
        }
        let s = acc.finish();
        assert!((s.weighted_cov() - s.phase(id(7)).unwrap().cov).abs() < 1e-12);
    }
}
