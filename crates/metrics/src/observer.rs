//! [`PhaseObserver`] implementations for the metric accumulators.
//!
//! Lets the accumulators ride a classified-interval stream produced once by
//! an experiment engine: the CoV accumulator reads each interval's CPI, the
//! run accumulator only the phase ID, and the vector accumulator the full
//! `[cpi, mpki...]` metric vector (see
//! [`VectorCovAccumulator::cpi_mpki`](crate::VectorCovAccumulator::cpi_mpki)).

use tpcp_core::{IntervalSummary, MetricCounts, PhaseId, PhaseObserver};

use crate::cov::CovAccumulator;
use crate::multi::VectorCovAccumulator;
use crate::runs::RunAccumulator;

impl PhaseObserver for CovAccumulator {
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary) {
        self.observe(id, summary.cpi());
    }
}

impl PhaseObserver for RunAccumulator {
    fn observe_phase(&mut self, id: PhaseId, _summary: &IntervalSummary) {
        self.observe(id);
    }
}

/// Feeds the interval's `[cpi, mpki...]` vector; the accumulator must have
/// been built with [`VectorCovAccumulator::cpi_mpki`] (or equivalent
/// `1 + MetricCounts::COUNT` labels).
impl PhaseObserver for VectorCovAccumulator {
    fn observe_phase(&mut self, id: PhaseId, summary: &IntervalSummary) {
        let mut values = [0.0; 1 + MetricCounts::COUNT];
        values[0] = summary.cpi();
        values[1..].copy_from_slice(&summary.mpki());
        self.observe(id, &values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observers_match_direct_calls() {
        let summary = IntervalSummary::new(0, 1_000, 1_500);
        let id = PhaseId::new(1);

        let mut direct = CovAccumulator::new();
        let mut driven = CovAccumulator::new();
        direct.observe(id, summary.cpi());
        driven.observe_phase(id, &summary);
        assert_eq!(direct.finish(), driven.finish());

        let mut vec_acc = VectorCovAccumulator::cpi_mpki();
        vec_acc.observe_phase(id, &summary);
        let s = vec_acc.finish();
        assert_eq!(s.labels().len(), 1 + MetricCounts::COUNT);
        assert!((s.whole_program_mean(0) - 1.5).abs() < 1e-12);
    }
}
