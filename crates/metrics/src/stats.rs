//! Streaming statistics.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for long streams of close values (per-phase CPIs are
/// exactly that).
///
/// # Example
///
/// ```
/// use tpcp_metrics::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation: `std_dev / mean` (0 when the mean is 0).
    ///
    /// This is the paper's homogeneity metric (Section 3.1).
    pub fn cov(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.population_std_dev() / self.mean
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.cov(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.population_variance(), 0.0);
    }

    #[test]
    fn constant_stream_has_zero_cov() {
        let mut w = Welford::new();
        for _ in 0..100 {
            w.push(3.5);
        }
        assert!(w.cov() < 1e-12);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 2.0 + 5.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.population_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.7).collect();
        let (left, right) = xs.split_at(11);
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut whole = Welford::new();
        for &x in left {
            a.push(x);
        }
        for &x in right {
            b.push(x);
        }
        for &x in &xs {
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
