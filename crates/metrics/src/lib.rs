//! Evaluation metrics for phase classifications and predictions
//! (the paper's Section 3.1 and the measurements behind Figures 2–9).
//!
//! - [`CovAccumulator`] → [`CovSummary`]: per-phase Coefficient of
//!   Variation of CPI, the execution-weighted overall CoV, and the
//!   whole-program CoV baseline.
//! - [`RunAccumulator`] → [`RunLengthStats`]: stable and transition phase
//!   run lengths with standard deviations (Figure 5) and the run-length
//!   class histogram (Figure 9, left).
//! - [`Welford`]: numerically stable streaming mean/variance, used by both.
//!
//! # Example
//!
//! ```
//! use tpcp_core::PhaseId;
//! use tpcp_metrics::CovAccumulator;
//!
//! let mut acc = CovAccumulator::new();
//! // Two phases with perfectly homogeneous CPI -> overall CoV 0.
//! for _ in 0..10 { acc.observe(PhaseId::new(1), 1.0); }
//! for _ in 0..10 { acc.observe(PhaseId::new(2), 3.0); }
//! let summary = acc.finish();
//! assert!(summary.weighted_cov() < 1e-12);
//! assert!(summary.whole_program_cov() > 0.3, "program-wide CPI varies");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agreement;
mod cov;
mod multi;
mod observer;
mod runs;
mod stats;

pub use agreement::{purity, rand_index};
pub use cov::{CovAccumulator, CovSummary, PhaseCov};
pub use multi::{VectorCovAccumulator, VectorCovSummary};
pub use runs::{RunAccumulator, RunLengthStats};
pub use stats::Welford;
