//! End-to-end tests for `tpcp-serve`: protocol round-trips over real
//! sockets, malformed-frame tolerance, backpressure isolation, graceful
//! drain, and (under `fault-inject`) the transport chaos suite pinning
//! survivor sessions bit-identical to a fault-free run.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use tpcp_serve::client::{drive_sessions, no_faults, run_session, SessionScript};
use tpcp_serve::protocol::{QueryKind, Request, Response, WireExtractor};
use tpcp_serve::server::{ServeConfig, Server, ServerHandle};
use tpcp_trace::{FrameReader, FrameWriter};

/// Small timeouts so failure-path tests finish in milliseconds, with an
/// idle window generous enough that healthy clients never trip it.
fn quick_config() -> ServeConfig {
    ServeConfig {
        read_timeout: Duration::from_millis(25),
        idle_timeout: Duration::from_secs(5),
        drain_deadline: Duration::from_secs(2),
        ..ServeConfig::default()
    }
}

fn spawn(config: ServeConfig) -> (ServerHandle, SocketAddr) {
    let handle = Server::spawn(config).expect("bind on loopback");
    let addr = handle.tcp_addr().expect("tcp listener configured");
    (handle, addr)
}

/// Time a stall fault holds its socket silent — must out-wait the
/// server's 25ms read tick by a wide margin.
const STALL_HOLD: Duration = Duration::from_millis(200);

/// A raw frame-level client for tests that need to misbehave on purpose.
struct TestClient {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
}

impl TestClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set client read timeout");
        let write = stream.try_clone().expect("clone stream for writing");
        Self {
            reader: FrameReader::new(stream),
            writer: FrameWriter::new(write),
        }
    }

    fn send(&mut self, request: &Request) {
        self.writer
            .write_frame(&request.encode())
            .expect("write request frame");
    }

    fn send_raw(&mut self, payload: &[u8]) {
        self.writer.write_frame(payload).expect("write raw frame");
    }

    fn recv(&mut self) -> Response {
        let payload = self
            .reader
            .read_frame()
            .expect("read response frame")
            .expect("server closed unexpectedly");
        Response::decode(payload).expect("decode response")
    }
}

#[test]
fn identical_scripts_produce_bitwise_identical_transcripts() {
    let scripts: Vec<SessionScript> = (1..=6).map(|s| SessionScript::for_session(s, 8)).collect();

    let mut runs = Vec::new();
    for _ in 0..2 {
        let (handle, addr) = spawn(quick_config());
        let transcripts: Vec<_> = drive_sessions(addr, &scripts, &no_faults, STALL_HOLD)
            .into_iter()
            .map(|r| r.expect("fault-free session must succeed"))
            .collect();
        let telemetry = handle.join();
        assert!(telemetry.drained);
        assert_eq!(telemetry.connections, scripts.len() as u64);
        runs.push(transcripts);
    }

    for (script, (a, b)) in scripts.iter().zip(runs[0].iter().zip(&runs[1])) {
        assert!(a.completed, "session {} did not complete", script.session);
        assert_eq!(
            a.classified.len(),
            script.intervals as usize,
            "one Classified per interval"
        );
        assert_eq!(a, b, "session {} diverged across runs", script.session);
    }
}

#[test]
fn malformed_frame_gets_error_response_and_connection_survives() {
    let (handle, addr) = spawn(quick_config());
    let mut client = TestClient::connect(addr);

    // A well-formed frame whose payload is garbage: structured error,
    // stream stays frame-aligned, connection stays up.
    client.send_raw(&[0xee, 0xee, 0xee]);
    match client.recv() {
        Response::Error { .. } => {}
        other => panic!("expected an error response, got {other:?}"),
    }

    // The same connection still serves real sessions.
    client.send(&Request::Hello {
        session: 7,
        extractor: WireExtractor::Bbv,
    });
    assert!(matches!(client.recv(), Response::Ok { session: 7 }));
    client.send(&Request::EndInterval {
        session: 7,
        cpi: 1.25,
    });
    assert!(matches!(
        client.recv(),
        Response::Classified {
            session: 7,
            intervals: 1,
            ..
        }
    ));

    let telemetry = handle.join();
    assert_eq!(telemetry.malformed_frames, 1);
    assert_eq!(telemetry.intervals, 1);
}

#[test]
fn oversized_frame_is_answered_then_connection_closes() {
    let (handle, addr) = spawn(quick_config());
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    let mut write = stream.try_clone().expect("clone stream");
    // A length prefix declaring far more than FRAME_MAX.
    write
        .write_all(&u32::MAX.to_le_bytes())
        .expect("send garbage prefix");
    write.flush().expect("flush");

    let mut reader = FrameReader::new(stream);
    let payload = reader
        .read_frame()
        .expect("server answers before closing")
        .expect("error frame expected");
    match Response::decode(payload).expect("decode error response") {
        Response::Error { detail, .. } => assert!(detail.contains("declared frame length")),
        other => panic!("expected oversized error, got {other:?}"),
    }
    // Then EOF: the stream offset was unrecoverable.
    assert!(matches!(reader.read_frame(), Ok(None)));

    let telemetry = handle.join();
    assert_eq!(telemetry.oversized_frames, 1);
}

#[test]
fn slow_reader_does_not_stall_sibling_sessions() {
    let mut config = quick_config();
    config.response_queue = 4;
    let (handle, addr) = spawn(config);

    // The laggard: floods interval requests without reading a single
    // response, so its bounded queue fills and *its* reader blocks.
    let mut laggard = TestClient::connect(addr);
    laggard.send(&Request::Hello {
        session: 100,
        extractor: WireExtractor::WorkingSet,
    });
    assert!(matches!(laggard.recv(), Response::Ok { session: 100 }));
    const FLOOD: u64 = 200;
    for i in 0..FLOOD {
        laggard.send(&Request::EndInterval {
            session: 100,
            cpi: 1.0 + (i as f64) / 100.0,
        });
    }

    // A healthy sibling must run to completion while the laggard's
    // responses are still queued.
    let script = SessionScript::for_session(101, 8);
    let transcript =
        run_session(addr, &script, &no_faults, STALL_HOLD).expect("sibling session succeeds");
    assert!(transcript.completed);

    // The laggard's responses were never lost — they all arrive, in
    // order, once it finally reads.
    for i in 0..FLOOD {
        match laggard.recv() {
            Response::Classified {
                session: 100,
                intervals,
                ..
            } => assert_eq!(intervals, i + 1),
            other => panic!("expected Classified #{i}, got {other:?}"),
        }
    }

    let telemetry = handle.join();
    assert_eq!(telemetry.intervals, FLOOD + 8);
}

#[test]
fn unix_socket_serves_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("tpcp-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create socket dir");
    let socket = dir.join("serve.sock");
    let mut config = quick_config();
    config.unix = Some(socket.clone());
    let handle = Server::spawn(config).expect("bind tcp + unix");

    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("connect unix socket");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    let write = stream.try_clone().expect("clone unix stream");
    let mut reader = FrameReader::new(stream);
    let mut writer = FrameWriter::new(write);

    let hello = Request::Hello {
        session: 9,
        extractor: WireExtractor::BranchMix,
    };
    writer.write_frame(&hello.encode()).expect("send hello");
    let payload = reader.read_frame().expect("read").expect("response");
    assert!(matches!(
        Response::decode(payload).expect("decode"),
        Response::Ok { session: 9 }
    ));

    let query = Request::Query {
        session: 9,
        kind: QueryKind::Phase,
    };
    writer.write_frame(&query.encode()).expect("send query");
    let payload = reader.read_frame().expect("read").expect("response");
    assert!(matches!(
        Response::decode(payload).expect("decode"),
        Response::Answer {
            session: 9,
            kind: QueryKind::Phase,
            value: None,
        }
    ));

    handle.join();
    // Drain removes the socket file.
    assert!(!socket.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_completes_within_deadline_and_notifies_idle_clients() {
    let mut config = quick_config();
    config.drain_deadline = Duration::from_millis(500);
    let (handle, addr) = spawn(config);

    // An idle-but-open client: drain must not wait for it to speak.
    let mut idle = TestClient::connect(addr);
    idle.send(&Request::Hello {
        session: 42,
        extractor: WireExtractor::Bbv,
    });
    assert!(matches!(idle.recv(), Response::Ok { session: 42 }));

    let started = Instant::now();
    handle.begin_drain();
    assert!(matches!(idle.recv(), Response::Draining));
    let telemetry = handle.join();
    let elapsed = started.elapsed();

    assert!(
        elapsed < Duration::from_secs(2),
        "drain took {elapsed:?}, expected well under the 500ms deadline plus margin"
    );
    assert!(telemetry.drained);
    assert_eq!(telemetry.connections, 1);
    assert_eq!(telemetry.store.created, 1);

    // New connections after drain are refused outright (listener down).
    assert!(
        TcpStream::connect(addr).is_err() || {
            // The OS may still complete the handshake against a closed
            // listener's backlog; a Hello must then go unanswered.
            let mut late = TestClient::connect(addr);
            late.send(&Request::Hello {
                session: 43,
                extractor: WireExtractor::Bbv,
            });
            late.reader_eof()
        }
    );
}

impl TestClient {
    /// True if the server side is closed (EOF or reset on next read).
    fn reader_eof(&mut self) -> bool {
        matches!(self.reader.read_frame(), Ok(None) | Err(_))
    }
}

#[test]
fn invalid_cpi_is_rejected_without_touching_session_state() {
    let (handle, addr) = spawn(quick_config());
    let mut client = TestClient::connect(addr);

    client.send(&Request::Hello {
        session: 5,
        extractor: WireExtractor::Bbv,
    });
    assert!(matches!(client.recv(), Response::Ok { session: 5 }));
    client.send(&Request::EndInterval {
        session: 5,
        cpi: 1.5,
    });
    assert!(matches!(
        client.recv(),
        Response::Classified {
            session: 5,
            intervals: 1,
            ..
        }
    ));
    client.send(&Request::Query {
        session: 5,
        kind: QueryKind::Phase,
    });
    let before = client.recv();

    // NaN, infinite, and negative CPIs must each earn a structured
    // Malformed error — and leave the session exactly as it was.
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.25] {
        client.send(&Request::EndInterval {
            session: 5,
            cpi: bad,
        });
        match client.recv() {
            Response::Error {
                session: 5, detail, ..
            } => assert!(detail.contains("CPI"), "detail names the CPI: {detail}"),
            other => panic!("expected a Malformed error for cpi {bad}, got {other:?}"),
        }
    }

    client.send(&Request::Query {
        session: 5,
        kind: QueryKind::Phase,
    });
    let after = client.recv();
    assert_eq!(before, after, "rejected CPIs must not move the classifier");

    // The session still advances on the next valid interval — by
    // exactly one, proving none of the rejects were observed.
    client.send(&Request::EndInterval {
        session: 5,
        cpi: 2.0,
    });
    assert!(matches!(
        client.recv(),
        Response::Classified {
            session: 5,
            intervals: 2,
            ..
        }
    ));

    let telemetry = handle.join();
    assert_eq!(telemetry.invalid_cpi, 4);
    assert_eq!(telemetry.intervals, 2);
}

/// Satellite regression: a failing TCP listener must back off on its own
/// gate while the Unix listener keeps serving at full speed — and
/// recover once the fault clears. Exercised in both serve modes, since
/// the original bug lived in the thread-per-connection accept loop.
#[test]
fn tcp_accept_failures_do_not_stall_the_unix_listener() {
    use tpcp_serve::server::AcceptFaults;

    for workers in [0usize, 4] {
        let dir = std::env::temp_dir().join(format!(
            "tpcp-serve-backoff-{}-{workers}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create socket dir");
        let socket = dir.join("serve.sock");
        let mut config = quick_config();
        config.workers = workers;
        config.unix = Some(socket.clone());
        config.accept_faults = AcceptFaults { tcp: 4, unix: 0 };
        let handle = Server::spawn(config).expect("bind tcp + unix");
        let addr = handle.tcp_addr().expect("tcp listener configured");

        // While the TCP gate is burning through its injected failures,
        // a Unix client must get served promptly.
        let started = Instant::now();
        let stream = std::os::unix::net::UnixStream::connect(&socket).expect("connect unix");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set read timeout");
        let write = stream.try_clone().expect("clone unix stream");
        let mut reader = FrameReader::new(stream);
        let mut writer = FrameWriter::new(write);
        writer
            .write_frame(
                &Request::Hello {
                    session: 21,
                    extractor: WireExtractor::WorkingSet,
                }
                .encode(),
            )
            .expect("send hello");
        let payload = reader.read_frame().expect("read").expect("response");
        assert!(matches!(
            Response::decode(payload).expect("decode"),
            Response::Ok { session: 21 }
        ));
        writer
            .write_frame(
                &Request::EndInterval {
                    session: 21,
                    cpi: 1.0,
                }
                .encode(),
            )
            .expect("send end");
        let payload = reader.read_frame().expect("read").expect("response");
        assert!(matches!(
            Response::decode(payload).expect("decode"),
            Response::Classified { session: 21, .. }
        ));
        let unix_latency = started.elapsed();
        assert!(
            unix_latency < Duration::from_millis(500),
            "unix listener stalled behind tcp backoff: {unix_latency:?} (workers={workers})"
        );

        // Once the injected failures are exhausted the TCP gate reopens
        // (worst case: the sum of its doubling backoffs, well under a
        // second) and a whole TCP session runs clean.
        let script = SessionScript::for_session(22, 4);
        let transcript =
            run_session(addr, &script, &no_faults, STALL_HOLD).expect("tcp recovers after faults");
        assert!(transcript.completed);

        let telemetry = handle.join();
        assert_eq!(
            telemetry.accept_failures_tcp, 4,
            "every injected tcp fault fires (workers={workers})"
        );
        assert_eq!(telemetry.accept_failures_unix, 0);
        assert_eq!(telemetry.connections, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The sharded worker-pool server and the single-lock
/// thread-per-connection server must be observably the same protocol
/// machine: identical scripts, bit-identical transcripts.
#[test]
fn pool_mode_matches_thread_per_connection_mode() {
    let scripts: Vec<SessionScript> = (1..=9).map(|s| SessionScript::for_session(s, 6)).collect();

    let run = |workers: usize, shards: usize| {
        let mut config = quick_config();
        config.workers = workers;
        config.shards = shards;
        // Eviction churn underneath, same as the chaos suite.
        config.max_live = 3;
        let (handle, addr) = spawn(config);
        let transcripts: Vec<_> = drive_sessions(addr, &scripts, &no_faults, STALL_HOLD)
            .into_iter()
            .map(|r| r.expect("fault-free session must succeed"))
            .collect();
        let telemetry = handle.join();
        assert!(telemetry.drained);
        assert!(telemetry.store.evictions > 0);
        transcripts
    };

    let threaded = run(0, 1);
    let pooled = run(4, 8);
    for (script, (a, b)) in scripts.iter().zip(threaded.iter().zip(&pooled)) {
        assert_eq!(
            a, b,
            "session {} diverged between serve modes",
            script.session
        );
    }
}

#[cfg(feature = "fault-inject")]
mod chaos {
    use super::*;
    use tpcp_experiments::fault::FaultPlan;
    use tpcp_serve::client::injector_oracle;
    use tpcp_serve::Transcript;

    /// The tentpole chaos assertion: transport faults on a subset of
    /// sessions leave every *survivor* session's transcript bit-identical
    /// to a fault-free run — across truncated frames, garbage prefixes,
    /// mid-frame stalls, and disconnects, while the store is small enough
    /// that eviction churn happens underneath.
    #[test]
    fn transport_faults_leave_survivor_sessions_bit_identical() {
        let scripts: Vec<SessionScript> =
            (1..=12).map(|s| SessionScript::for_session(s, 8)).collect();
        let faulted: &[u64] = &[3, 6, 9, 11];

        let run = |use_faults: bool| -> Vec<Transcript> {
            let mut config = quick_config();
            // Four live slots for twelve sessions: eviction and snapshot
            // restore run constantly underneath the chaos.
            config.max_live = 4;
            let (handle, addr) = spawn(config);
            let results = if use_faults {
                let labels: Vec<String> = faulted.iter().map(|s| format!("s{s}")).collect();
                let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                // Frame budget below each session's total frame count, so
                // every planned fault actually fires mid-script.
                let plan = FaultPlan::randomized_transport(0xC4A05, &label_refs, 12);
                let injector = plan.build();
                for label in &label_refs {
                    assert!(injector.targets_session(label));
                }
                let oracle = injector_oracle(&injector);
                drive_sessions(addr, &scripts, &oracle, STALL_HOLD)
            } else {
                drive_sessions(addr, &scripts, &no_faults, STALL_HOLD)
            };
            let telemetry = handle.join();
            assert!(telemetry.drained);
            assert!(
                telemetry.store.evictions > 0,
                "twelve sessions over four live slots must evict"
            );
            results
                .into_iter()
                .map(|r| r.expect("sessions never see protocol errors"))
                .collect()
        };

        let baseline = run(false);
        let chaotic = run(true);

        for (script, (clean, faulty)) in scripts.iter().zip(baseline.iter().zip(&chaotic)) {
            if faulted.contains(&script.session) {
                assert!(
                    !faulty.completed,
                    "session {} was faulted mid-script and cannot have closed cleanly",
                    script.session
                );
            } else {
                assert!(faulty.completed, "survivor {} must finish", script.session);
                assert_eq!(
                    clean, faulty,
                    "survivor session {} diverged under chaos",
                    script.session
                );
            }
        }
    }
}
