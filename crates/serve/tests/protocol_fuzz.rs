//! Property fuzz for the serve wire protocol: both request decoders and
//! the response decoder are fed random bytes, mutated encodings, and
//! truncations of valid frames. The invariants under fuzz:
//!
//! - Neither decoder ever panics — every rejection is a structured error.
//! - The `count > remaining / 2` guard bounds the event allocation by
//!   the bytes actually present, so a lying length prefix cannot
//!   allocate.
//! - [`Request::decode`] (the allocating client-side view) and
//!   [`decode_request_into`] (the server's scratch-buffer hot path)
//!   accept and reject *byte-identical* inputs, agreeing on every
//!   decoded field and every error's session and code.

use proptest::prelude::*;
use tpcp_serve::protocol::{
    decode_request_into, ErrorCode, FastRequest, QueryKind, Request, Response, WireEvent,
    WireExtractor,
};

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        (1u64..100_000, 0usize..3).prop_map(|(session, e)| Request::Hello {
            session,
            extractor: WireExtractor::ALL[e],
        }),
        (
            1u64..100_000,
            prop::collection::vec((any::<u64>(), 0u64..200_000_000_000), 0..48),
        )
            .prop_map(|(session, raw)| Request::Events {
                session,
                events: raw
                    .into_iter()
                    .map(|(pc, insns)| WireEvent { pc, insns })
                    .collect(),
            }),
        (1u64..100_000, -4.0f64..16.0)
            .prop_map(|(session, cpi)| Request::EndInterval { session, cpi }),
        (1u64..100_000, 0usize..3).prop_map(|(session, k)| Request::Query {
            session,
            kind: QueryKind::ALL[k],
        }),
        (1u64..100_000).prop_map(|session| Request::Close { session }),
    ]
    .boxed()
}

fn arb_response() -> BoxedStrategy<Response> {
    let codes = [
        ErrorCode::Malformed,
        ErrorCode::UnknownSession,
        ErrorCode::Oversized,
        ErrorCode::SessionExists,
        ErrorCode::Draining,
        ErrorCode::BadTag,
    ];
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<u64>()).prop_map(
            |(session, phase, transition, intervals)| Response::Classified {
                session,
                phase,
                transition,
                intervals,
            }
        ),
        (any::<u64>(), 0usize..3, any::<u64>(), any::<bool>()).prop_map(
            |(session, k, value, confident)| Response::Answer {
                session,
                kind: QueryKind::ALL[k],
                value: (value % 2 == 0).then_some((value, confident)),
            }
        ),
        (any::<u64>()).prop_map(|session| Response::Ok { session }),
        (0u64..1).prop_map(|_| Response::Draining),
        (any::<u64>(), 0usize..6, 0usize..24).prop_map(move |(session, c, len)| Response::Error {
            session,
            code: codes[c],
            detail: "x".repeat(len),
        }),
    ]
    .boxed()
}

/// Runs both request decoders on `payload` and checks every agreement
/// invariant. Panics (via `prop_assert`-style errors) on divergence.
fn check_decoders_agree(payload: &[u8]) -> Result<(), proptest::runner::TestCaseError> {
    let mut scratch = Vec::new();
    let slow = Request::decode(payload);
    let fast = decode_request_into(payload, &mut scratch);
    // The over-allocation guard: at least two payload bytes per decoded
    // event, no matter what the length prefix claimed.
    prop_assert!(
        scratch.len() <= payload.len() / 2,
        "scratch holds {} events from a {}-byte payload",
        scratch.len(),
        payload.len()
    );
    match (slow, fast) {
        (Ok(slow), Ok(fast)) => match (slow, fast) {
            (
                Request::Hello {
                    session: a,
                    extractor: x,
                },
                FastRequest::Hello {
                    session: b,
                    extractor: y,
                },
            ) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(x, y);
                prop_assert!(scratch.is_empty());
            }
            (Request::Events { session: a, events }, FastRequest::Events { session: b }) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(events.len(), scratch.len());
                for (wire, batched) in events.iter().zip(&scratch) {
                    prop_assert_eq!(wire.pc, batched.pc);
                    // The hot path saturates wire insns into the event
                    // type's u32 during decode.
                    prop_assert_eq!(wire.insns.min(u64::from(u32::MAX)) as u32, batched.insns);
                }
            }
            (
                Request::EndInterval { session: a, cpi: x },
                FastRequest::EndInterval { session: b, cpi: y },
            ) => {
                prop_assert_eq!(a, b);
                prop_assert!(x.to_bits() == y.to_bits(), "cpi diverged: {x} vs {y}");
                prop_assert!(scratch.is_empty());
            }
            (
                Request::Query {
                    session: a,
                    kind: x,
                },
                FastRequest::Query {
                    session: b,
                    kind: y,
                },
            ) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(x, y);
                prop_assert!(scratch.is_empty());
            }
            (Request::Close { session: a }, FastRequest::Close { session: b }) => {
                prop_assert_eq!(a, b);
                prop_assert!(scratch.is_empty());
            }
            (slow, fast) => {
                prop_assert!(false, "decoders disagree on shape: {slow:?} vs {fast:?}");
            }
        },
        (Err(slow), Err(fast)) => {
            prop_assert_eq!(slow.session, fast.session);
            prop_assert_eq!(slow.code, fast.code);
            prop_assert!(
                scratch.is_empty(),
                "a rejected frame must not leave events in the scratch buffer"
            );
        }
        (slow, fast) => {
            prop_assert!(
                false,
                "one decoder accepted what the other rejected: {slow:?} vs {fast:?}"
            );
        }
    }
    Ok(())
}

proptest! {
    /// Raw random bytes: no panic, no over-allocation, full agreement.
    #[test]
    fn random_bytes_never_panic_and_decoders_agree(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        check_decoders_agree(&bytes)?;
    }

    /// Valid encodings survive the round trip, and remain panic-free
    /// under byte mutations and truncation at every prefix length.
    #[test]
    fn mutated_requests_never_panic_and_decoders_agree(
        request in arb_request(),
        flips in prop::collection::vec((any::<usize>(), 1u16..256), 1..4),
        cut in any::<usize>(),
    ) {
        let clean = request.encode();
        prop_assert_eq!(Request::decode(&clean).expect("round trip"), request);
        check_decoders_agree(&clean)?;

        let mut mutated = clean.clone();
        for &(idx, xor) in &flips {
            let idx = idx % mutated.len().max(1);
            if let Some(byte) = mutated.get_mut(idx) {
                *byte ^= xor as u8;
            }
        }
        mutated.truncate(cut % (mutated.len() + 1));
        check_decoders_agree(&mutated)?;
    }

    /// An `Events` frame whose varint count wildly exceeds the bytes
    /// present is rejected by both decoders before allocating.
    #[test]
    fn implausible_event_counts_are_rejected(
        session in 1u64..100_000,
        claimed in 128u64..u64::MAX / 2,
        present in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Hand-build the frame: tag 2 (Events), session, lying count,
        // then fewer payload bytes than two per claimed event.
        let template = Request::Events { session, events: Vec::new() }.encode();
        let mut payload = Vec::from(&template[..template.len() - 1]);
        let mut count = claimed;
        while count >= 0x80 {
            payload.push((count as u8 & 0x7f) | 0x80);
            count >>= 7;
        }
        payload.push(count as u8);
        payload.extend_from_slice(&present);

        let mut scratch = Vec::new();
        let fast = decode_request_into(&payload, &mut scratch);
        prop_assert!(fast.is_err(), "a lying count must be rejected");
        prop_assert!(scratch.is_empty());
        prop_assert!(scratch.capacity() == 0, "rejected before any allocation");
        prop_assert!(Request::decode(&payload).is_err());
    }

    /// The response decoder round-trips valid frames and never panics on
    /// mutated or truncated ones.
    #[test]
    fn mutated_responses_never_panic(
        response in arb_response(),
        flips in prop::collection::vec((any::<usize>(), 1u16..256), 1..4),
        cut in any::<usize>(),
    ) {
        let clean = response.encode();
        prop_assert_eq!(Response::decode(&clean).expect("round trip"), response);

        let mut mutated = clean.clone();
        for &(idx, xor) in &flips {
            let idx = idx % mutated.len().max(1);
            if let Some(byte) = mutated.get_mut(idx) {
                *byte ^= xor as u8;
            }
        }
        mutated.truncate(cut % (mutated.len() + 1));
        // Structured result either way — the assertion is "no panic".
        let _ = Response::decode(&mutated);
    }

    /// Raw random bytes into the response decoder: never a panic.
    #[test]
    fn random_bytes_never_panic_response_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Response::decode(&bytes);
    }
}
