//! A blocking client and deterministic chaos driver for `tpcp-serve`.
//!
//! [`SessionScript`] derives a session's whole workload — event streams,
//! CPIs, query points — from its session id with splitmix64, so two runs
//! of the same session are byte-identical on the wire. That is what makes
//! the chaos suite's core assertion possible: run the same scripts twice,
//! once fault-free and once with transport faults on a subset of
//! sessions, and require the *survivor* sessions' transcripts to match
//! bit for bit.
//!
//! Transport faults (under the `fault-inject` feature) are applied
//! client-side at the frame counter the
//! `FaultPlan` names, keyed by the
//! session label `s<id>` — truncated frames, garbage length prefixes,
//! mid-frame stalls, and abrupt disconnects, each ending the faulted
//! session's connection.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use tpcp_trace::{FrameReader, FrameWriter};

use crate::protocol::{QueryKind, Request, Response, WireEvent, WireExtractor};

/// Deterministic per-session workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct SessionScript {
    /// The session id (drives the event stream's seed).
    pub session: u64,
    /// Which extractor the session's classifier runs.
    pub extractor: WireExtractor,
    /// Intervals to classify.
    pub intervals: u64,
    /// Events per interval.
    pub events_per_interval: u64,
    /// Issue the three queries after every `query_every`-th interval
    /// (0 disables queries).
    pub query_every: u64,
}

impl SessionScript {
    /// A script for `session`, cycling the extractor by id so a fleet of
    /// sessions exercises all three back-ends.
    pub fn for_session(session: u64, intervals: u64) -> Self {
        Self {
            session,
            extractor: WireExtractor::ALL[(session % 3) as usize],
            intervals,
            events_per_interval: 24,
            query_every: 4,
        }
    }

    /// The fault-plan label for this session (`s<id>`).
    pub fn label(&self) -> String {
        format!("s{}", self.session)
    }
}

/// splitmix64 — the workspace's standard seedable generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything a session observed, for bitwise comparison across runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transcript {
    /// `(phase, transition, intervals)` from every `Classified` response.
    pub classified: Vec<(u64, bool, u64)>,
    /// Every query answer, in issue order.
    pub answers: Vec<(QueryKind, Option<(u64, bool)>)>,
    /// Whether the script ran to its clean `Close` (false when a
    /// transport fault cut the connection).
    pub completed: bool,
}

/// How the driver should terminate a frame it was told to fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportAction {
    /// Send the frame normally.
    Send,
    /// Send only the first `keep` bytes of prefix+payload, then close.
    Truncate(usize),
    /// Send a length prefix declaring an absurd payload, then close.
    GarbagePrefix,
    /// Send half the frame, hold the connection silent, then close.
    Stall,
    /// Close without sending.
    Disconnect,
}

/// A per-frame fault oracle. The fault-free driver uses [`no_faults`].
pub type FaultOracle<'a> = dyn Fn(&str, u64) -> TransportAction + Sync + 'a;

/// The fault-free oracle: every frame is sent normally.
pub fn no_faults(_session: &str, _frame: u64) -> TransportAction {
    TransportAction::Send
}

/// Adapts a built [`FaultInjector`](tpcp_experiments::fault::FaultInjector)
/// into a [`FaultOracle`].
#[cfg(feature = "fault-inject")]
pub fn injector_oracle(
    faults: &tpcp_experiments::fault::FaultInjector,
) -> impl Fn(&str, u64) -> TransportAction + Sync + '_ {
    use tpcp_experiments::fault::TransportFault;
    move |session, frame| match faults.transport_fault(session, frame) {
        None => TransportAction::Send,
        Some(TransportFault::TruncateFrame { keep }) => TransportAction::Truncate(keep),
        Some(TransportFault::GarbagePrefix) => TransportAction::GarbagePrefix,
        Some(TransportFault::StalledRead) => TransportAction::Stall,
        Some(TransportFault::Disconnect) => TransportAction::Disconnect,
    }
}

/// A connected client: frame transport plus a send counter the fault
/// oracle keys on.
struct Connection {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
    label: String,
    sent: u64,
    /// How long a stall fault holds the socket silent before closing.
    stall_hold: Duration,
}

/// Outcome of a faulted (or clean) send.
enum SendOutcome {
    Sent,
    /// A fault ended the connection; the session's run is over.
    Cut,
}

impl Connection {
    fn open(addr: SocketAddr, label: String, stall_hold: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // The server runs per-read deadlines; a Nagle-delayed request
        // half must never read as a mid-frame stall.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let write = stream.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(stream),
            writer: FrameWriter::new(write),
            label,
            sent: 0,
            stall_hold,
        })
    }

    /// Sends one request, consulting the oracle at this frame counter.
    fn send(&mut self, request: &Request, oracle: &FaultOracle<'_>) -> io::Result<SendOutcome> {
        let frame = self.sent;
        self.sent += 1;
        let payload = request.encode();
        match oracle(&self.label, frame) {
            TransportAction::Send => {
                self.writer.write_frame(&payload)?;
                Ok(SendOutcome::Sent)
            }
            TransportAction::Truncate(keep) => {
                let mut raw = (payload.len() as u32).to_le_bytes().to_vec();
                raw.extend_from_slice(&payload);
                let keep = keep.min(raw.len());
                self.writer.get_ref().write_all(&raw[..keep])?;
                self.writer.get_ref().flush()?;
                Ok(SendOutcome::Cut)
            }
            TransportAction::GarbagePrefix => {
                self.writer.get_ref().write_all(&u32::MAX.to_le_bytes())?;
                self.writer.get_ref().flush()?;
                Ok(SendOutcome::Cut)
            }
            TransportAction::Stall => {
                let half = (payload.len() / 2).max(1).min(payload.len());
                let mut raw = (payload.len() as u32).to_le_bytes().to_vec();
                raw.extend_from_slice(&payload[..half]);
                self.writer.get_ref().write_all(&raw)?;
                self.writer.get_ref().flush()?;
                // Hold the socket open and silent long enough for the
                // server's read deadline to fire.
                std::thread::sleep(self.stall_hold);
                Ok(SendOutcome::Cut)
            }
            TransportAction::Disconnect => Ok(SendOutcome::Cut),
        }
    }

    fn receive(&mut self) -> io::Result<Response> {
        match self.reader.read_frame() {
            Ok(Some(payload)) => Response::decode(payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            )),
            Err(e) => Err(io::Error::other(e.to_string())),
        }
    }
}

/// Runs one session's script against the server at `addr`, returning its
/// transcript. A transport fault ends the run early with
/// `completed: false`; protocol errors from the server are returned as
/// `io` errors (the chaos suite treats any error frame on a *survivor*
/// session as a failure).
pub fn run_session(
    addr: SocketAddr,
    script: &SessionScript,
    oracle: &FaultOracle<'_>,
    stall_hold: Duration,
) -> io::Result<Transcript> {
    let mut transcript = Transcript::default();
    let mut conn = Connection::open(addr, script.label(), stall_hold)?;
    let mut seed = script.session.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed;

    let hello = Request::Hello {
        session: script.session,
        extractor: script.extractor,
    };
    match conn.send(&hello, oracle)? {
        SendOutcome::Cut => return Ok(transcript),
        SendOutcome::Sent => {}
    }
    expect_ok(&mut conn, script.session)?;

    for interval in 0..script.intervals {
        // Deterministic event stream: a handful of hot base addresses per
        // session, revisited in a pattern that changes every interval.
        let mut events = Vec::with_capacity(script.events_per_interval as usize);
        for _ in 0..script.events_per_interval {
            let r = splitmix(&mut seed);
            let base = 0x40_0000 + (r % 7) * 0x8_0000;
            events.push(WireEvent {
                pc: base + (r >> 16) % 0x400,
                insns: 20 + r % 40,
            });
        }
        let events = Request::Events {
            session: script.session,
            events,
        };
        match conn.send(&events, oracle)? {
            SendOutcome::Cut => return Ok(transcript),
            SendOutcome::Sent => {}
        }
        let cpi = 0.8 + ((splitmix(&mut seed) % 400) as f64) / 100.0;
        let end = Request::EndInterval {
            session: script.session,
            cpi,
        };
        match conn.send(&end, oracle)? {
            SendOutcome::Cut => return Ok(transcript),
            SendOutcome::Sent => {}
        }
        match conn.receive()? {
            Response::Classified {
                phase,
                transition,
                intervals,
                ..
            } => transcript.classified.push((phase, transition, intervals)),
            other => return Err(unexpected(&other)),
        }

        if script.query_every > 0 && (interval + 1) % script.query_every == 0 {
            for kind in QueryKind::ALL {
                let query = Request::Query {
                    session: script.session,
                    kind,
                };
                match conn.send(&query, oracle)? {
                    SendOutcome::Cut => return Ok(transcript),
                    SendOutcome::Sent => {}
                }
                match conn.receive()? {
                    Response::Answer { kind, value, .. } => transcript.answers.push((kind, value)),
                    other => return Err(unexpected(&other)),
                }
            }
        }
    }

    let close = Request::Close {
        session: script.session,
    };
    match conn.send(&close, oracle)? {
        SendOutcome::Cut => return Ok(transcript),
        SendOutcome::Sent => {}
    }
    expect_ok(&mut conn, script.session)?;
    transcript.completed = true;
    Ok(transcript)
}

fn expect_ok(conn: &mut Connection, session: u64) -> io::Result<()> {
    match conn.receive()? {
        Response::Ok { session: s } if s == session => Ok(()),
        other => Err(unexpected(&other)),
    }
}

fn unexpected(response: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {response:?}"),
    )
}

/// Parameters for a throughput-oriented fleet run (the `serve_fleet`
/// perf lane): many concurrent connections, pipelined intervals, no
/// faults, no queries.
#[derive(Debug, Clone, Copy)]
pub struct FleetScript {
    /// Concurrent connections (one session per connection).
    pub connections: u64,
    /// Intervals classified per session.
    pub intervals: u64,
    /// Events per interval.
    pub events_per_interval: u64,
    /// Intervals kept in flight per connection before reading responses.
    /// Must stay at or below the server's `response_queue` so neither
    /// side deadlocks on backpressure.
    pub pipeline: u64,
    /// Client pumper threads; connections are dealt round-robin.
    pub client_threads: usize,
}

impl FleetScript {
    /// A fleet of `connections` sessions with the perf lane's defaults.
    pub fn new(connections: u64, intervals: u64) -> Self {
        Self {
            connections,
            intervals,
            events_per_interval: 24,
            pipeline: 4,
            client_threads: 8,
        }
    }
}

/// Aggregate of a fleet run. The checksum folds every `Classified`
/// response (keyed by session and sequence, so ordering within a session
/// matters but thread interleaving does not) and must be identical
/// across serve modes for the same script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRun {
    /// Connections driven.
    pub connections: u64,
    /// Total intervals classified.
    pub intervals: u64,
    /// Order-insensitive digest of every classification.
    pub checksum: u64,
}

/// One response folded into the fleet digest: mix the session, the
/// interval's sequence number, and the classification, then XOR into the
/// accumulator (commutative across sessions and threads).
fn fold_classified(
    acc: u64,
    session: u64,
    seq: u64,
    phase: u64,
    transition: bool,
    total: u64,
) -> u64 {
    let mut h = session ^ seq.rotate_left(17);
    h = h
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(phase)
        .wrapping_add(u64::from(transition))
        .wrapping_add(total.rotate_left(31));
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    acc ^ (h ^ (h >> 27))
}

/// Connects with exponential backoff — a 512-connection fleet slamming
/// one listener overflows accept backlogs transiently.
fn connect_retry(addr: SocketAddr) -> io::Result<TcpStream> {
    let mut delay = Duration::from_millis(1);
    for _ in 0..8 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
        }
    }
    TcpStream::connect(addr)
}

/// A fleet connection: plain frame transport, no fault machinery.
struct FleetConn {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
    session: u64,
    seed: u64,
    sent_intervals: u64,
    read_intervals: u64,
}

impl FleetConn {
    fn open(addr: SocketAddr, session: u64) -> io::Result<Self> {
        let stream = connect_retry(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let write = stream.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(stream),
            writer: FrameWriter::new(write),
            session,
            // Same seed derivation as `run_session`, so the event stream
            // for a given session id is one deterministic thing
            // everywhere.
            seed: session.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed,
            sent_intervals: 0,
            read_intervals: 0,
        })
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        self.writer.write_frame(&request.encode())
    }

    fn receive(&mut self) -> io::Result<Response> {
        match self.reader.read_frame() {
            Ok(Some(payload)) => Response::decode(payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            )),
            Err(e) => Err(io::Error::other(e.to_string())),
        }
    }

    /// Sends one interval (events + end) without reading the response.
    fn send_interval(&mut self, events_per_interval: u64) -> io::Result<()> {
        let mut events = Vec::with_capacity(events_per_interval as usize);
        for _ in 0..events_per_interval {
            let r = splitmix(&mut self.seed);
            let base = 0x40_0000 + (r % 7) * 0x8_0000;
            events.push(WireEvent {
                pc: base + (r >> 16) % 0x400,
                insns: 20 + r % 40,
            });
        }
        self.send(&Request::Events {
            session: self.session,
            events,
        })?;
        let cpi = 0.8 + ((splitmix(&mut self.seed) % 400) as f64) / 100.0;
        self.send(&Request::EndInterval {
            session: self.session,
            cpi,
        })?;
        self.sent_intervals += 1;
        Ok(())
    }

    /// Reads one `Classified` response and folds it into `acc`.
    fn read_classified(&mut self, acc: &mut u64) -> io::Result<()> {
        match self.receive()? {
            Response::Classified {
                phase,
                transition,
                intervals,
                ..
            } => {
                *acc = fold_classified(
                    *acc,
                    self.session,
                    self.read_intervals,
                    phase,
                    transition,
                    intervals,
                );
                self.read_intervals += 1;
                Ok(())
            }
            other => Err(unexpected(&other)),
        }
    }
}

/// One pumper thread's share of the fleet: opens its connections, then
/// round-robins pipelined intervals across them so many requests are in
/// flight at once. Returns its checksum contribution.
fn pump_fleet(addr: SocketAddr, sessions: &[u64], script: &FleetScript) -> io::Result<u64> {
    let mut conns = Vec::with_capacity(sessions.len());
    for &session in sessions {
        let mut conn = FleetConn::open(addr, session)?;
        conn.send(&Request::Hello {
            session,
            extractor: WireExtractor::ALL[(session % 3) as usize],
        })?;
        conns.push(conn);
    }
    for conn in &mut conns {
        match conn.receive()? {
            Response::Ok { session } if session == conn.session => {}
            other => return Err(unexpected(&other)),
        }
    }

    let mut acc = 0u64;
    let pipeline = script.pipeline.max(1);
    while conns.iter().any(|c| c.read_intervals < script.intervals) {
        for conn in &mut conns {
            let batch = pipeline.min(script.intervals - conn.sent_intervals);
            for _ in 0..batch {
                conn.send_interval(script.events_per_interval)?;
            }
        }
        for conn in &mut conns {
            while conn.read_intervals < conn.sent_intervals {
                conn.read_classified(&mut acc)?;
            }
        }
    }

    for conn in &mut conns {
        conn.send(&Request::Close {
            session: conn.session,
        })?;
    }
    for conn in &mut conns {
        match conn.receive()? {
            Response::Ok { session } if session == conn.session => {}
            other => return Err(unexpected(&other)),
        }
    }
    Ok(acc)
}

/// Drives a [`FleetScript`] against the server at `addr`: `connections`
/// concurrent sessions pumped by `client_threads` threads, each keeping
/// `pipeline` intervals in flight per connection. The returned digest is
/// independent of thread scheduling, so runs against different serve
/// modes are directly comparable.
pub fn drive_fleet(addr: SocketAddr, script: &FleetScript) -> io::Result<FleetRun> {
    let threads = script.client_threads.max(1);
    let sessions: Vec<u64> = (1..=script.connections).collect();
    let shares: Vec<Vec<u64>> = (0..threads)
        .map(|t| sessions.iter().skip(t).step_by(threads).copied().collect())
        .collect();
    let mut results: Vec<Option<io::Result<u64>>> = (0..threads).map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (slot, share) in results.iter_mut().zip(&shares) {
            scope.spawn(move |_| {
                *slot = Some(pump_fleet(addr, share, script));
            });
        }
    })
    .unwrap_or_else(|_| panic!("fleet pumper thread panicked"));

    let mut checksum = 0u64;
    for result in results {
        checksum ^= result.unwrap_or_else(|| Err(io::Error::other("pumper produced no result")))?;
    }
    Ok(FleetRun {
        connections: script.connections,
        intervals: script.connections * script.intervals,
        checksum,
    })
}

/// Drives `sessions` scripts concurrently (one thread per session) and
/// returns each session's result in id order.
pub fn drive_sessions(
    addr: SocketAddr,
    scripts: &[SessionScript],
    oracle: &FaultOracle<'_>,
    stall_hold: Duration,
) -> Vec<io::Result<Transcript>> {
    let mut results: Vec<Option<io::Result<Transcript>>> =
        (0..scripts.len()).map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (slot, script) in results.iter_mut().zip(scripts) {
            scope.spawn(move |_| {
                *slot = Some(run_session(addr, script, oracle, stall_hold));
            });
        }
    })
    // Session threads forward failures through their result slot.
    .unwrap_or_else(|_| panic!("session driver thread panicked"));
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| Err(io::Error::other("session thread produced no result"))))
        .collect()
}
