//! The serve loop: accept with exponential-backoff retry, per-connection
//! read deadlines, bounded per-connection write queues, and graceful
//! drain.
//!
//! # Failure model
//!
//! Every failure degrades the smallest unit that contains it:
//!
//! - a **malformed frame** costs one error response — the connection and
//!   every session stay up;
//! - an **oversized frame** costs the connection (the stream offset is
//!   unrecoverable once a length prefix lies) but no session state;
//! - an **idle or stalled peer** costs its own connection at the read
//!   deadline; sessions survive for the next connection to resume;
//! - a **slow reader** fills only its own bounded response queue — the
//!   reader thread blocks on *its* queue while every other connection's
//!   queue keeps draining (the session-store lock is never held across a
//!   send);
//! - **memory pressure** parks LRU sessions as snapshots instead of
//!   growing without bound (see [`SessionStore`]);
//! - **drain** (SIGTERM or [`ServerHandle::begin_drain`]) stops accepting,
//!   lets in-flight work flush within a deadline, then freezes a final
//!   telemetry snapshot.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tpcp_trace::{FrameError, FrameReader, FrameWriter};

use crate::protocol::{DecodeFailure, ErrorCode, Request, Response};
use crate::session::{SessionStore, StoreError};
use crate::telemetry::{ServeCounters, ServeTelemetry};

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP bind address (e.g. `127.0.0.1:0`); `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix socket path; `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// Most sessions kept materialized before LRU eviction parks them.
    pub max_live: usize,
    /// Most parked snapshots kept before the oldest is dropped.
    pub max_parked: usize,
    /// Socket read deadline — the poll tick that turns silence into
    /// [`FrameError::Idle`] / [`FrameError::Stalled`].
    pub read_timeout: Duration,
    /// How long a connection may sit idle at a frame boundary before the
    /// server closes it.
    pub idle_timeout: Duration,
    /// Socket write deadline — a reader that stops draining its queue
    /// this long loses its connection (never its sessions).
    pub write_timeout: Duration,
    /// Responses queued per connection before the reader thread blocks
    /// (backpressure is per-connection by construction).
    pub response_queue: usize,
    /// How long drain waits for in-flight connections to finish.
    pub drain_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            tcp: Some("127.0.0.1:0".to_owned()),
            unix: None,
            max_live: 256,
            max_parked: 1024,
            read_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            response_queue: 8,
            drain_deadline: Duration::from_secs(10),
        }
    }
}

/// State shared between the accept loop and every connection thread.
struct Shared {
    store: Mutex<SessionStore>,
    counters: ServeCounters,
    /// Set by [`ServerHandle::begin_drain`]; the accept loop stops and
    /// connections answer `Draining` and close at their next deadline.
    stop: AtomicBool,
    /// The wall-clock moment drain must finish, set when drain begins.
    drain_by: Mutex<Option<Instant>>,
    read_timeout: Duration,
    idle_timeout: Duration,
    response_queue: usize,
}

impl Shared {
    fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn past_drain_deadline(&self) -> bool {
        match *self.drain_by.lock() {
            Some(by) => Instant::now() >= by,
            None => false,
        }
    }
}

/// A running server.
pub struct Server;

/// Handle to a spawned server: its bound addresses, a drain trigger, and
/// the final telemetry on join.
pub struct ServerHandle {
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    shared: Arc<Shared>,
    thread: thread::JoinHandle<ServeTelemetry>,
}

impl ServerHandle {
    /// The bound TCP address, if a TCP listener was configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, if a Unix listener was configured.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Requests a graceful drain: stop accepting, flush in-flight work,
    /// freeze telemetry. Idempotent.
    pub fn begin_drain(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Whether the serve loop is still running.
    pub fn is_running(&self) -> bool {
        !self.thread.is_finished()
    }

    /// Drains (if not already draining) and waits for the final telemetry
    /// snapshot.
    pub fn join(self) -> ServeTelemetry {
        self.begin_drain();
        match self.thread.join() {
            Ok(telemetry) => telemetry,
            // The serve loop isolates every per-connection panic; one
            // escaping is an internal bug, surfaced loudly.
            Err(_) => panic!("serve loop panicked"),
        }
    }
}

impl Server {
    /// Binds the configured listeners and spawns the serve loop on a
    /// background thread. Fails only on bind errors; everything after is
    /// handled inside the loop.
    pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
        let tcp = match &config.tcp {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let tcp_addr = match &tcp {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };
        let unix = match &config.unix {
            Some(path) => {
                // A stale socket file from a previous run blocks the bind.
                let _ = std::fs::remove_file(path);
                Some(std::os::unix::net::UnixListener::bind(path)?)
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            store: Mutex::new(SessionStore::new(config.max_live, config.max_parked)),
            counters: ServeCounters::default(),
            stop: AtomicBool::new(false),
            drain_by: Mutex::new(None),
            read_timeout: config.read_timeout,
            idle_timeout: config.idle_timeout,
            response_queue: config.response_queue,
        });
        let loop_shared = Arc::clone(&shared);
        let unix_path = config.unix.clone();
        let thread = thread::spawn(move || accept_loop(tcp, unix, config, loop_shared));
        Ok(ServerHandle {
            tcp_addr,
            unix_path,
            shared,
            thread,
        })
    }
}

/// Sleeps `total`, in small slices so a drain request cuts the sleep
/// short.
fn backoff_sleep(shared: &Shared, total: Duration) {
    let slice = Duration::from_millis(20);
    let mut remaining = total;
    while !remaining.is_zero() && !shared.draining() {
        let step = remaining.min(slice);
        thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// One accept attempt's outcome, unified across listener kinds.
enum Accepted {
    /// A connection arrived and its threads were spawned.
    Conn(thread::JoinHandle<()>),
    /// Nothing pending.
    WouldBlock,
    /// The listener failed transiently (backoff and retry).
    Failed,
}

fn accept_tcp(listener: &TcpListener, config: &ServeConfig, shared: &Arc<Shared>) -> Accepted {
    match listener.accept() {
        Ok((stream, _)) => spawn_connection(stream, config, shared),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Accepted::WouldBlock,
        Err(_) => Accepted::Failed,
    }
}

fn accept_unix(
    listener: &std::os::unix::net::UnixListener,
    config: &ServeConfig,
    shared: &Arc<Shared>,
) -> Accepted {
    match listener.accept() {
        Ok((stream, _)) => spawn_unix_connection(stream, config, shared),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Accepted::WouldBlock,
        Err(_) => Accepted::Failed,
    }
}

fn spawn_connection(stream: TcpStream, config: &ServeConfig, shared: &Arc<Shared>) -> Accepted {
    // Frames are latency-bound request/response units; Nagle delays on
    // small responses read as server-side stalls to a deadline-running
    // client.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return Accepted::Failed;
    };
    ServeCounters::bump(&shared.counters.connections);
    let shared = Arc::clone(shared);
    Accepted::Conn(thread::spawn(move || {
        serve_connection(stream, write_half, &shared);
    }))
}

fn spawn_unix_connection(
    stream: std::os::unix::net::UnixStream,
    config: &ServeConfig,
    shared: &Arc<Shared>,
) -> Accepted {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return Accepted::Failed;
    };
    ServeCounters::bump(&shared.counters.connections);
    let shared = Arc::clone(shared);
    Accepted::Conn(thread::spawn(move || {
        serve_connection(stream, write_half, &shared);
    }))
}

/// The accept loop: polls the nonblocking listeners, backing off
/// exponentially (1 ms doubling to 1 s) while nothing is pending or a
/// listener errors, resetting on every accepted connection. On drain it
/// stops accepting, arms the drain deadline, joins the connection
/// threads, and freezes the final telemetry snapshot.
fn accept_loop(
    tcp: Option<TcpListener>,
    unix: Option<std::os::unix::net::UnixListener>,
    config: ServeConfig,
    shared: Arc<Shared>,
) -> ServeTelemetry {
    if let Some(listener) = &tcp {
        let _ = listener.set_nonblocking(true);
    }
    if let Some(listener) = &unix {
        let _ = listener.set_nonblocking(true);
    }
    const BACKOFF_MIN: Duration = Duration::from_millis(1);
    const BACKOFF_MAX: Duration = Duration::from_secs(1);
    let mut backoff = BACKOFF_MIN;
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shared.draining() {
        let mut progressed = false;
        for accepted in tcp
            .as_ref()
            .map(|l| accept_tcp(l, &config, &shared))
            .into_iter()
            .chain(unix.as_ref().map(|l| accept_unix(l, &config, &shared)))
        {
            match accepted {
                Accepted::Conn(handle) => {
                    connections.push(handle);
                    progressed = true;
                }
                Accepted::WouldBlock | Accepted::Failed => {}
            }
        }
        if progressed {
            backoff = BACKOFF_MIN;
        } else {
            backoff_sleep(&shared, backoff);
            backoff = (backoff * 2).min(BACKOFF_MAX);
        }
        // Reap finished connection threads so the handle list stays
        // bounded by *live* connections.
        connections.retain(|h| !h.is_finished());
    }
    // Drain: arm the deadline every connection thread checks, then wait
    // for them. The deadline guarantees each loop exits within one read
    // tick of it, so these joins are bounded.
    *shared.drain_by.lock() = Some(Instant::now() + config.drain_deadline);
    for handle in connections {
        let _ = handle.join();
    }
    if let Some(path) = &config.unix {
        let _ = std::fs::remove_file(path);
    }
    let store = shared.store.lock().counters();
    ServeTelemetry::freeze(&shared.counters, store, true)
}

/// Outcome of handling one decoded frame.
enum FrameOutcome {
    /// Keep reading.
    Continue,
    /// Stop reading (the stream is unrecoverable or the client closed).
    Close,
}

/// Serves one connection: reads frames on this thread, writes responses
/// from a dedicated writer thread fed by a bounded queue, so a peer that
/// stops reading blocks only this connection.
fn serve_connection<R: Read, W: Write + Send + 'static>(read: R, write: W, shared: &Shared) {
    let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(shared.response_queue.max(1));
    let writer = thread::spawn(move || {
        let mut frames = FrameWriter::new(write);
        let mut written = 0u64;
        while let Ok(payload) = rx.recv() {
            if frames.write_frame(&payload).is_err() {
                // Write deadline or broken pipe: stop draining the queue;
                // the closed channel unblocks the reader thread.
                break;
            }
            written += 1;
        }
        written
    });

    let mut reader = FrameReader::new(read);
    let mut idle = Duration::ZERO;
    loop {
        if shared.draining() && shared.past_drain_deadline() {
            let _ = tx.send(Response::Draining.encode());
            break;
        }
        match reader.read_frame() {
            Ok(None) => break,
            Ok(Some(payload)) => {
                idle = Duration::ZERO;
                ServeCounters::bump(&shared.counters.frames_read);
                match handle_frame(payload, shared, &tx) {
                    FrameOutcome::Continue => {}
                    FrameOutcome::Close => break,
                }
            }
            Err(FrameError::Idle) => {
                if shared.draining() {
                    let _ = tx.send(Response::Draining.encode());
                    break;
                }
                idle += shared.read_timeout;
                if idle >= shared.idle_timeout {
                    ServeCounters::bump(&shared.counters.idle_closes);
                    break;
                }
            }
            Err(FrameError::Stalled) => {
                ServeCounters::bump(&shared.counters.stalled_closes);
                break;
            }
            Err(FrameError::Truncated) => {
                ServeCounters::bump(&shared.counters.truncated_closes);
                break;
            }
            Err(FrameError::Oversized { declared }) => {
                // The prefix lied, so the stream offset is gone — answer
                // the error, then close.
                ServeCounters::bump(&shared.counters.oversized_frames);
                let _ = tx.send(
                    Response::Error {
                        session: 0,
                        code: ErrorCode::Oversized,
                        detail: format!("declared frame length {declared}"),
                    }
                    .encode(),
                );
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    drop(tx);
    if let Ok(written) = writer.join() {
        shared
            .counters
            .frames_written
            .fetch_add(written, Ordering::Relaxed);
    }
}

/// Maps a store error to its protocol response.
fn store_error(session: u64, err: &StoreError) -> Response {
    let (code, detail) = match err {
        StoreError::UnknownSession => (ErrorCode::UnknownSession, "no such session".to_owned()),
        StoreError::SessionExists => (
            ErrorCode::SessionExists,
            "session id already in use".to_owned(),
        ),
        StoreError::Restore(e) => (
            ErrorCode::Malformed,
            format!("session snapshot failed to restore: {e}"),
        ),
    };
    Response::Error {
        session,
        code,
        detail,
    }
}

/// Decodes and executes one frame, sending the response (if any) through
/// the connection's bounded queue. Store work happens under the store
/// lock; the send happens after it is released, so a blocked send never
/// stalls other connections' store access.
fn handle_frame(
    payload: &[u8],
    shared: &Shared,
    tx: &crossbeam::channel::Sender<Vec<u8>>,
) -> FrameOutcome {
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(DecodeFailure {
            session,
            code,
            error,
        }) => {
            // Malformed payload inside a well-formed frame: the stream
            // stays frame-aligned, so answer and keep the connection.
            ServeCounters::bump(&shared.counters.malformed_frames);
            let _ = tx.send(
                Response::Error {
                    session,
                    code,
                    detail: error.to_string(),
                }
                .encode(),
            );
            return FrameOutcome::Continue;
        }
    };
    let response = match request {
        Request::Hello { session, extractor } => {
            if shared.draining() {
                Some(Response::Error {
                    session,
                    code: ErrorCode::Draining,
                    detail: "server is draining".to_owned(),
                })
            } else if session == 0 {
                Some(Response::Error {
                    session,
                    code: ErrorCode::Malformed,
                    detail: "session id 0 is reserved".to_owned(),
                })
            } else {
                match shared.store.lock().open(session, extractor) {
                    Ok(()) => Some(Response::Ok { session }),
                    Err(e) => Some(store_error(session, &e)),
                }
            }
        }
        Request::Events { session, events } => {
            let mut store = shared.store.lock();
            match store.touch(session) {
                Ok(live) => {
                    live.observe(events.iter().map(|ev| {
                        // Wire insns are varint u64; the event type
                        // carries u32. Saturate deterministically.
                        let insns = ev.insns.min(u64::from(u32::MAX)) as u32;
                        tpcp_core::BranchEvent::new(ev.pc, insns)
                    }));
                    // Fire-and-forget: events are the hot path, and the
                    // interval boundary acknowledges the whole batch.
                    None
                }
                Err(e) => Some(store_error(session, &e)),
            }
        }
        Request::EndInterval { session, cpi } => {
            let result = {
                let mut store = shared.store.lock();
                store.touch(session).map(|live| live.end_interval(cpi))
            };
            match result {
                Ok(classified) => {
                    ServeCounters::bump(&shared.counters.intervals);
                    Some(Response::Classified {
                        session,
                        phase: classified.phase,
                        transition: classified.transition,
                        intervals: classified.intervals,
                    })
                }
                Err(e) => Some(store_error(session, &e)),
            }
        }
        Request::Query { session, kind } => {
            let result = {
                let mut store = shared.store.lock();
                store.touch(session).map(|live| live.query(kind))
            };
            match result {
                Ok(value) => {
                    ServeCounters::bump(&shared.counters.queries);
                    Some(Response::Answer {
                        session,
                        kind,
                        value,
                    })
                }
                Err(e) => Some(store_error(session, &e)),
            }
        }
        Request::Close { session } => match shared.store.lock().close(session) {
            Ok(()) => Some(Response::Ok { session }),
            Err(e) => Some(store_error(session, &e)),
        },
    };
    if let Some(response) = response {
        // This send is the per-connection backpressure point: it blocks
        // when this client stops reading, and only then.
        if tx.send(response.encode()).is_err() {
            return FrameOutcome::Close;
        }
    }
    FrameOutcome::Continue
}
