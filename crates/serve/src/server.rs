//! The serve loop: a readiness-driven worker pool (default) or a
//! thread-per-connection fallback, over a sharded session store, with
//! per-listener accept backoff, per-connection deadlines, bounded
//! per-connection response queues, and graceful drain.
//!
//! # Failure model
//!
//! Every failure degrades the smallest unit that contains it:
//!
//! - a **malformed frame** costs one error response — the connection and
//!   every session stay up;
//! - an **invalid CPI** (NaN, infinite, negative) costs one error
//!   response — the session's statistics are untouched;
//! - an **oversized frame** costs the connection (the stream offset is
//!   unrecoverable once a length prefix lies) but no session state;
//! - an **idle or stalled peer** costs its own connection at the read
//!   deadline; sessions survive for the next connection to resume;
//! - a **slow reader** fills only its own bounded response queue — its
//!   connection stops being read while every other connection keeps
//!   flowing (the session-store locks are never held across a send);
//! - **memory pressure** parks LRU sessions as snapshots instead of
//!   growing without bound (see [`SessionStore`](crate::SessionStore));
//! - a **failing listener** backs off exponentially *on its own gate*
//!   (`BackoffGate`) — a broken TCP listener never delays accepts on
//!   the healthy Unix listener, or vice versa;
//! - **drain** (SIGTERM or [`ServerHandle::begin_drain`]) stops
//!   accepting, lets in-flight work flush within a deadline, then
//!   freezes a final telemetry snapshot.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tpcp_core::BranchEvent;
use tpcp_trace::{FrameError, FrameReader, FrameWriter};

use crate::poll::{self, PollFd, POLLIN};
use crate::protocol::{self, DecodeFailure, ErrorCode, FastRequest, Response};
use crate::session::{ShardedStore, StoreError};
use crate::telemetry::{ServeCounters, ServeTelemetry};

/// Forced accept failures, for fault-injection tests: each listed
/// listener fails its next N accept attempts before behaving normally.
/// Zero (the default) injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcceptFaults {
    /// Forced failures on the TCP listener.
    pub tcp: u64,
    /// Forced failures on the Unix listener.
    pub unix: u64,
}

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP bind address (e.g. `127.0.0.1:0`); `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix socket path; `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// Most sessions kept materialized before LRU eviction parks them
    /// (split evenly across shards, rounding up).
    pub max_live: usize,
    /// Most parked snapshots kept before the oldest is dropped (split
    /// evenly across shards, rounding up).
    pub max_parked: usize,
    /// Worker threads multiplexing connections via the readiness loop.
    /// `0` selects the thread-per-connection fallback, kept as the
    /// scaling baseline the `serve_fleet` perf lane measures against.
    pub workers: usize,
    /// Session-store shards (each an independently locked LRU).
    pub shards: usize,
    /// Socket read deadline — silence past this mid-frame is a stall,
    /// and the poll tick that paces deadline sweeps.
    pub read_timeout: Duration,
    /// How long a connection may sit idle at a frame boundary before the
    /// server closes it.
    pub idle_timeout: Duration,
    /// Write deadline — a reader that stops draining its responses this
    /// long loses its connection (never its sessions).
    pub write_timeout: Duration,
    /// Responses queued per connection before the server stops reading
    /// more of its requests (backpressure is per-connection by
    /// construction).
    pub response_queue: usize,
    /// How long drain waits for in-flight connections to finish.
    pub drain_deadline: Duration,
    /// Emit a telemetry snapshot (counters + per-shard occupancy + queue
    /// depths) this often while running; `None` snapshots only at drain.
    pub telemetry_interval: Option<Duration>,
    /// Where periodic snapshots are written (atomically, via a tempfile
    /// rename); `None` keeps them in memory only
    /// ([`ServerHandle::latest_periodic`]).
    pub telemetry_path: Option<PathBuf>,
    /// Forced accept failures for fault-injection tests.
    pub accept_faults: AcceptFaults,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            tcp: Some("127.0.0.1:0".to_owned()),
            unix: None,
            max_live: 256,
            max_parked: 1024,
            workers: 4,
            shards: 8,
            read_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            response_queue: 8,
            drain_deadline: Duration::from_secs(10),
            telemetry_interval: None,
            telemetry_path: None,
            accept_faults: AcceptFaults::default(),
        }
    }
}

/// State shared between the serve loop, its workers, and the handle.
pub(crate) struct Shared {
    pub(crate) store: ShardedStore,
    pub(crate) counters: ServeCounters,
    /// Set by [`ServerHandle::begin_drain`]; the serve loop stops
    /// accepting and connections drain and close.
    stop: AtomicBool,
    /// Set when the serve loop has exited (stops the telemetry thread).
    finished: AtomicBool,
    /// The wall-clock moment drain must finish, set when drain begins.
    drain_by: Mutex<Option<Instant>>,
    pub(crate) read_timeout: Duration,
    pub(crate) idle_timeout: Duration,
    pub(crate) write_timeout: Duration,
    pub(crate) response_queue: usize,
    workers: usize,
    /// Write half of the pool's self-wake pipe: nudges the dispatcher
    /// out of `poll` when a worker returns a connection or drain begins.
    waker: Mutex<Option<std::os::unix::net::UnixStream>>,
    /// Coalesces wakes: set by the first waker, cleared by the
    /// dispatcher at the top of its loop. While set, further wakes are
    /// free — the dispatcher is already committed to another pass, so a
    /// burst of worker returns costs one pipe write and one poll wakeup
    /// instead of one per return.
    wake_pending: AtomicBool,
    /// The most recent periodic telemetry snapshot.
    latest: Mutex<Option<ServeTelemetry>>,
    /// Remaining forced accept failures (fault injection).
    fault_tcp: AtomicU64,
    fault_unix: AtomicU64,
}

impl Shared {
    fn new(config: &ServeConfig) -> Self {
        Self {
            store: ShardedStore::new(config.shards, config.max_live, config.max_parked),
            counters: ServeCounters::default(),
            stop: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            drain_by: Mutex::new(None),
            read_timeout: config.read_timeout,
            idle_timeout: config.idle_timeout,
            write_timeout: config.write_timeout,
            response_queue: config.response_queue,
            workers: config.workers,
            waker: Mutex::new(None),
            wake_pending: AtomicBool::new(false),
            latest: Mutex::new(None),
            fault_tcp: AtomicU64::new(config.accept_faults.tcp),
            fault_unix: AtomicU64::new(config.accept_faults.unix),
        }
    }

    pub(crate) fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    pub(crate) fn past_drain_deadline(&self) -> bool {
        match *self.drain_by.lock() {
            Some(by) => Instant::now() >= by,
            None => false,
        }
    }

    /// Arms the drain deadline (idempotent; first caller wins).
    pub(crate) fn arm_drain_deadline(&self, deadline: Duration) {
        let mut by = self.drain_by.lock();
        if by.is_none() {
            *by = Some(Instant::now() + deadline);
        }
    }

    /// Nudges the pool dispatcher out of its poll wait. No-op in
    /// thread-per-connection mode (nothing polls).
    pub(crate) fn wake(&self) {
        if self.wake_pending.swap(true, Ordering::SeqCst) {
            // A wake is already in flight; the dispatcher will see our
            // work when it runs its pass.
            return;
        }
        if let Some(mut tx) = self.waker.lock().as_ref() {
            // A WouldBlock here means the pipe is full, which already
            // guarantees a pending wakeup.
            let _ = tx.write(&[1u8]);
        }
    }

    /// Re-arms wake coalescing; the dispatcher calls this at the top of
    /// every pass, *before* it consumes pending work, so a wake that
    /// races the pass is never lost — it just writes the pipe again.
    pub(crate) fn begin_dispatch_pass(&self) {
        self.wake_pending.store(false, Ordering::SeqCst);
    }

    /// Consumes one forced accept failure for the listener, if any are
    /// left.
    pub(crate) fn take_accept_fault(&self, tcp: bool) -> bool {
        let slot = if tcp {
            &self.fault_tcp
        } else {
            &self.fault_unix
        };
        slot.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Whether a forced accept failure is still pending for the listener
    /// (fault-injected listeners must be *attempted* even when no real
    /// connection is queued, so the injected failures actually fire).
    pub(crate) fn accept_fault_pending(&self, tcp: bool) -> bool {
        let slot = if tcp {
            &self.fault_tcp
        } else {
            &self.fault_unix
        };
        slot.load(Ordering::SeqCst) > 0
    }

    /// Freezes a telemetry snapshot of the current counters and store
    /// occupancy.
    pub(crate) fn freeze(&self, drained: bool) -> ServeTelemetry {
        ServeTelemetry::freeze(
            &self.counters,
            self.store.counters(),
            &self.store.occupancy(),
            self.workers as u64,
            drained,
        )
    }
}

/// Per-listener accept backoff: exponential from 1 ms to 1 s on
/// failures, reset by the first successful accept. Each listener owns
/// its own gate, so one failing endpoint never delays the other — the
/// serve loop simply excludes a backed-off listener from its readiness
/// set until the gate's retry time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BackoffGate {
    backoff: Duration,
    retry_at: Option<Instant>,
}

impl BackoffGate {
    const MIN: Duration = Duration::from_millis(1);
    const MAX: Duration = Duration::from_secs(1);

    pub(crate) fn new() -> Self {
        Self {
            backoff: Self::MIN,
            retry_at: None,
        }
    }

    /// Whether the listener may be polled/attempted now.
    pub(crate) fn ready(&self, now: Instant) -> bool {
        match self.retry_at {
            Some(at) => now >= at,
            None => true,
        }
    }

    /// Time until the gate reopens, if it is currently closed.
    pub(crate) fn time_to_retry(&self, now: Instant) -> Option<Duration> {
        self.retry_at.and_then(|at| at.checked_duration_since(now))
    }

    /// Records a failed accept: close the gate and double the backoff.
    pub(crate) fn failure(&mut self, now: Instant) {
        self.retry_at = Some(now + self.backoff);
        self.backoff = (self.backoff * 2).min(Self::MAX);
    }

    /// Records a successful accept: reopen and reset the backoff.
    pub(crate) fn success(&mut self) {
        self.backoff = Self::MIN;
        self.retry_at = None;
    }
}

/// A running server.
pub struct Server;

/// Handle to a spawned server: its bound addresses, a drain trigger,
/// live telemetry access, and the final telemetry on join.
pub struct ServerHandle {
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    shared: Arc<Shared>,
    thread: thread::JoinHandle<ServeTelemetry>,
    telemetry_thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address, if a TCP listener was configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, if a Unix listener was configured.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Requests a graceful drain: stop accepting, flush in-flight work,
    /// freeze telemetry. Idempotent.
    pub fn begin_drain(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake();
    }

    /// Whether the serve loop is still running.
    pub fn is_running(&self) -> bool {
        !self.thread.is_finished()
    }

    /// A telemetry snapshot of the server as it runs (not a drain
    /// snapshot: `drained` is false).
    pub fn telemetry_now(&self) -> ServeTelemetry {
        self.shared.freeze(false)
    }

    /// The most recent periodic snapshot, if `telemetry_interval` was
    /// configured and at least one tick has fired.
    pub fn latest_periodic(&self) -> Option<ServeTelemetry> {
        self.shared.latest.lock().clone()
    }

    /// Drains (if not already draining) and waits for the final telemetry
    /// snapshot.
    pub fn join(self) -> ServeTelemetry {
        self.begin_drain();
        let telemetry = match self.thread.join() {
            Ok(telemetry) => telemetry,
            // The serve loop isolates every per-connection panic; one
            // escaping is an internal bug, surfaced loudly.
            Err(_) => panic!("serve loop panicked"),
        };
        self.shared.finished.store(true, Ordering::SeqCst);
        if let Some(handle) = self.telemetry_thread {
            let _ = handle.join();
        }
        telemetry
    }
}

impl Server {
    /// Binds the configured listeners and spawns the serve loop on a
    /// background thread. Fails only on bind errors; everything after is
    /// handled inside the loop.
    pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
        // The std bind backlog (128) drops SYNs under a connect storm —
        // hundreds of clients arriving inside one scheduling quantum —
        // and every dropped SYN costs that client a full TCP
        // retransmission timeout. Deepen the queue to cover the largest
        // fleet the store is provisioned for.
        let backlog = (config.max_live + config.max_parked).max(1024) as u32;
        let tcp = match &config.tcp {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let tcp_addr = match &tcp {
            Some(listener) => {
                crate::poll::set_listen_backlog(listener.as_raw_fd(), backlog)?;
                Some(listener.local_addr()?)
            }
            None => None,
        };
        let unix = match &config.unix {
            Some(path) => {
                // A stale socket file from a previous run blocks the bind.
                let _ = std::fs::remove_file(path);
                let listener = std::os::unix::net::UnixListener::bind(path)?;
                crate::poll::set_listen_backlog(listener.as_raw_fd(), backlog)?;
                Some(listener)
            }
            None => None,
        };
        let shared = Arc::new(Shared::new(&config));
        let loop_shared = Arc::clone(&shared);
        let unix_path = config.unix.clone();
        let telemetry_thread = config.telemetry_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            let path = config.telemetry_path.clone();
            thread::spawn(move || telemetry_loop(&shared, interval, path.as_deref()))
        });
        let thread = if config.workers == 0 {
            thread::spawn(move || accept_loop(tcp, unix, config, loop_shared))
        } else {
            let (wake_rx, wake_tx) = std::os::unix::net::UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            *shared.waker.lock() = Some(wake_tx);
            thread::spawn(move || crate::pool::pool_loop(tcp, unix, wake_rx, config, loop_shared))
        };
        Ok(ServerHandle {
            tcp_addr,
            unix_path,
            shared,
            thread,
            telemetry_thread,
        })
    }
}

/// The periodic-telemetry thread: every `interval`, freeze a live
/// snapshot, stash it for [`ServerHandle::latest_periodic`], and (if a
/// path is configured) write it atomically so a scraper never reads a
/// torn document.
fn telemetry_loop(shared: &Shared, interval: Duration, path: Option<&std::path::Path>) {
    let slice = Duration::from_millis(10).min(interval.max(Duration::from_millis(1)));
    let mut next = Instant::now() + interval;
    while !shared.finished.load(Ordering::SeqCst) {
        thread::sleep(slice);
        if Instant::now() < next {
            continue;
        }
        next = Instant::now() + interval;
        let snapshot = shared.freeze(false);
        if let Some(path) = path {
            let _ = write_atomic(path, snapshot.to_json().as_bytes());
        }
        *shared.latest.lock() = Some(snapshot);
    }
}

/// Writes `bytes` to `path` via a sibling tempfile and rename, so
/// concurrent readers see either the old document or the new one.
pub(crate) fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// The thread-per-connection serve loop (`workers = 0`): polls the
/// listeners for readiness, spawning a reader + writer thread pair per
/// connection. Kept as the scaling baseline the worker pool is measured
/// against, and for its simpler failure surface.
fn accept_loop(
    tcp: Option<TcpListener>,
    unix: Option<std::os::unix::net::UnixListener>,
    config: ServeConfig,
    shared: Arc<Shared>,
) -> ServeTelemetry {
    if let Some(listener) = &tcp {
        let _ = listener.set_nonblocking(true);
    }
    if let Some(listener) = &unix {
        let _ = listener.set_nonblocking(true);
    }
    // One backoff gate per listener (satellite fix): a failing TCP
    // listener closes only its own gate, so the Unix listener keeps
    // accepting at full speed, and vice versa.
    let mut tcp_gate = BackoffGate::new();
    let mut unix_gate = BackoffGate::new();
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    let tick = Duration::from_millis(20);
    while !shared.draining() {
        let now = Instant::now();
        let mut fds: Vec<PollFd> = Vec::with_capacity(2);
        let mut which: Vec<bool> = Vec::with_capacity(2); // true = tcp
        if let Some(listener) = &tcp {
            if tcp_gate.ready(now) {
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                which.push(true);
            }
        }
        if let Some(listener) = &unix {
            if unix_gate.ready(now) {
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                which.push(false);
            }
        }
        // Wake at the drain-check tick or when a closed gate reopens,
        // whichever is sooner.
        let mut timeout = tick;
        for gate in [&tcp_gate, &unix_gate] {
            if let Some(delay) = gate.time_to_retry(now) {
                timeout = timeout.min(delay.max(Duration::from_millis(1)));
            }
        }
        // Both gates closed (nothing to poll) and a failed poll pace
        // the loop the same way: sleep out the timeout.
        if fds.is_empty() || poll::poll(&mut fds, timeout).is_err() {
            thread::sleep(timeout);
        }
        for (slot, &is_tcp) in fds.iter().zip(&which) {
            // A fault-injected listener is attempted even without a
            // queued connection, so its forced failures actually fire.
            if !slot.ready() && !shared.accept_fault_pending(is_tcp) {
                continue;
            }
            let gate = if is_tcp {
                &mut tcp_gate
            } else {
                &mut unix_gate
            };
            loop {
                let accepted = match (is_tcp, &tcp, &unix) {
                    (true, Some(listener), _) => accept_tcp(listener, &config, &shared),
                    (false, _, Some(listener)) => accept_unix(listener, &config, &shared),
                    // A listener only enters the poll set if configured.
                    _ => break,
                };
                match accepted {
                    Accepted::Conn(handle) => {
                        connections.push(handle);
                        gate.success();
                    }
                    Accepted::WouldBlock => break,
                    Accepted::Failed => {
                        let counter = if is_tcp {
                            &shared.counters.accept_failures_tcp
                        } else {
                            &shared.counters.accept_failures_unix
                        };
                        ServeCounters::bump(counter);
                        gate.failure(Instant::now());
                        break;
                    }
                }
            }
        }
        // Reap finished connection threads so the handle list stays
        // bounded by *live* connections.
        connections.retain(|h| !h.is_finished());
    }
    // Drain: arm the deadline every connection thread checks, then wait
    // for them. The deadline guarantees each loop exits within one read
    // tick of it, so these joins are bounded.
    shared.arm_drain_deadline(config.drain_deadline);
    for handle in connections {
        let _ = handle.join();
    }
    if let Some(path) = &config.unix {
        let _ = std::fs::remove_file(path);
    }
    shared.freeze(true)
}

/// One accept attempt's outcome, unified across listener kinds.
enum Accepted {
    /// A connection arrived and its threads were spawned.
    Conn(thread::JoinHandle<()>),
    /// Nothing pending.
    WouldBlock,
    /// The listener failed transiently (backoff and retry).
    Failed,
}

fn accept_tcp(listener: &TcpListener, config: &ServeConfig, shared: &Arc<Shared>) -> Accepted {
    if shared.take_accept_fault(true) {
        return Accepted::Failed;
    }
    match listener.accept() {
        Ok((stream, _)) => spawn_connection(stream, config, shared),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Accepted::WouldBlock,
        Err(_) => Accepted::Failed,
    }
}

fn accept_unix(
    listener: &std::os::unix::net::UnixListener,
    config: &ServeConfig,
    shared: &Arc<Shared>,
) -> Accepted {
    if shared.take_accept_fault(false) {
        return Accepted::Failed;
    }
    match listener.accept() {
        Ok((stream, _)) => spawn_unix_connection(stream, config, shared),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Accepted::WouldBlock,
        Err(_) => Accepted::Failed,
    }
}

fn spawn_connection(stream: TcpStream, config: &ServeConfig, shared: &Arc<Shared>) -> Accepted {
    // Frames are latency-bound request/response units; Nagle delays on
    // small responses read as server-side stalls to a deadline-running
    // client.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return Accepted::Failed;
    };
    ServeCounters::bump(&shared.counters.connections);
    let shared = Arc::clone(shared);
    Accepted::Conn(thread::spawn(move || {
        serve_connection(stream, write_half, &shared);
    }))
}

fn spawn_unix_connection(
    stream: std::os::unix::net::UnixStream,
    config: &ServeConfig,
    shared: &Arc<Shared>,
) -> Accepted {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return Accepted::Failed;
    };
    ServeCounters::bump(&shared.counters.connections);
    let shared = Arc::clone(shared);
    Accepted::Conn(thread::spawn(move || {
        serve_connection(stream, write_half, &shared);
    }))
}

/// Outcome of handling one decoded frame.
enum FrameOutcome {
    /// Keep reading.
    Continue,
    /// Stop reading (the stream is unrecoverable or the client closed).
    Close,
}

/// Serves one connection: reads frames on this thread, writes responses
/// from a dedicated writer thread fed by a bounded queue, so a peer that
/// stops reading blocks only this connection.
fn serve_connection<R: Read, W: Write + Send + 'static>(read: R, write: W, shared: &Arc<Shared>) {
    let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(shared.response_queue.max(1));
    let writer = {
        let shared = Arc::clone(shared);
        thread::spawn(move || {
            let mut frames = FrameWriter::new(write);
            while let Ok(payload) = rx.recv() {
                let ok = frames.write_frame(&payload).is_ok();
                shared
                    .counters
                    .queued_responses
                    .fetch_sub(1, Ordering::Relaxed);
                if !ok {
                    // Write deadline or broken pipe: stop draining the
                    // queue; the closed channel unblocks the reader.
                    break;
                }
                ServeCounters::bump(&shared.counters.frames_written);
            }
        })
    };
    // Sends the encoded response, maintaining the queue-depth gauge.
    let push = |payload: Vec<u8>| -> Result<(), ()> {
        shared
            .counters
            .queued_responses
            .fetch_add(1, Ordering::Relaxed);
        tx.send(payload).map_err(|_| {
            shared
                .counters
                .queued_responses
                .fetch_sub(1, Ordering::Relaxed);
        })
    };

    let mut reader = FrameReader::new(read);
    // Reused per-frame scratch: one decode fills it, one batched
    // `observe` drains it — no per-event dispatch, no per-frame Vec.
    let mut scratch: Vec<BranchEvent> = Vec::new();
    let mut idle = Duration::ZERO;
    loop {
        if shared.draining() && shared.past_drain_deadline() {
            let _ = push(Response::Draining.encode());
            break;
        }
        match reader.read_frame() {
            Ok(None) => break,
            Ok(Some(payload)) => {
                idle = Duration::ZERO;
                ServeCounters::bump(&shared.counters.frames_read);
                match handle_frame(payload, shared, &mut scratch, &push) {
                    FrameOutcome::Continue => {}
                    FrameOutcome::Close => break,
                }
            }
            Err(FrameError::Idle) => {
                if shared.draining() {
                    let _ = push(Response::Draining.encode());
                    break;
                }
                idle += shared.read_timeout;
                if idle >= shared.idle_timeout {
                    ServeCounters::bump(&shared.counters.idle_closes);
                    break;
                }
            }
            Err(FrameError::Stalled) => {
                ServeCounters::bump(&shared.counters.stalled_closes);
                break;
            }
            Err(FrameError::Truncated) => {
                ServeCounters::bump(&shared.counters.truncated_closes);
                break;
            }
            Err(FrameError::Oversized { declared }) => {
                // The prefix lied, so the stream offset is gone — answer
                // the error, then close.
                ServeCounters::bump(&shared.counters.oversized_frames);
                let _ = push(
                    Response::Error {
                        session: 0,
                        code: ErrorCode::Oversized,
                        detail: format!("declared frame length {declared}"),
                    }
                    .encode(),
                );
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Decodes and executes one frame, sending the response (if any) through
/// the connection's bounded queue. Store work happens under the owning
/// shard's lock; the send happens after it is released, so a blocked
/// send never stalls other connections' store access.
fn handle_frame(
    payload: &[u8],
    shared: &Shared,
    scratch: &mut Vec<BranchEvent>,
    push: &dyn Fn(Vec<u8>) -> Result<(), ()>,
) -> FrameOutcome {
    let request = match protocol::decode_request_into(payload, scratch) {
        Ok(request) => request,
        Err(DecodeFailure {
            session,
            code,
            error,
        }) => {
            // Malformed payload inside a well-formed frame: the stream
            // stays frame-aligned, so answer and keep the connection.
            ServeCounters::bump(&shared.counters.malformed_frames);
            let _ = push(
                Response::Error {
                    session,
                    code,
                    detail: error.to_string(),
                }
                .encode(),
            );
            return FrameOutcome::Continue;
        }
    };
    if let Some(response) = execute(shared, request, scratch) {
        // This send is the per-connection backpressure point: it blocks
        // when this client stops reading, and only then.
        if push(response.encode()).is_err() {
            return FrameOutcome::Close;
        }
    }
    FrameOutcome::Continue
}

/// Maps a store error to its protocol response.
fn store_error(session: u64, err: &StoreError) -> Response {
    let (code, detail) = match err {
        StoreError::UnknownSession => (ErrorCode::UnknownSession, "no such session".to_owned()),
        StoreError::SessionExists => (
            ErrorCode::SessionExists,
            "session id already in use".to_owned(),
        ),
        StoreError::Restore(e) => (
            ErrorCode::Malformed,
            format!("session snapshot failed to restore: {e}"),
        ),
    };
    Response::Error {
        session,
        code,
        detail,
    }
}

/// Executes one decoded request against the sharded store, returning the
/// response to send (if any). Shared verbatim by both serve modes, so
/// their per-request semantics cannot diverge. Only the named session's
/// shard is locked, and never across a send.
pub(crate) fn execute(
    shared: &Shared,
    request: FastRequest,
    events: &[BranchEvent],
) -> Option<Response> {
    match request {
        FastRequest::Hello { session, extractor } => {
            if shared.draining() {
                Some(Response::Error {
                    session,
                    code: ErrorCode::Draining,
                    detail: "server is draining".to_owned(),
                })
            } else if session == 0 {
                Some(Response::Error {
                    session,
                    code: ErrorCode::Malformed,
                    detail: "session id 0 is reserved".to_owned(),
                })
            } else {
                match shared.store.shard(session).lock().open(session, extractor) {
                    Ok(()) => Some(Response::Ok { session }),
                    Err(e) => Some(store_error(session, &e)),
                }
            }
        }
        FastRequest::Events { session } => {
            let mut shard = shared.store.shard(session).lock();
            match shard.touch(session) {
                Ok(live) => {
                    // One batched call per frame — the accumulate hot
                    // path dispatches per frame, not per event.
                    live.observe_batch(events);
                    // Fire-and-forget: the interval boundary
                    // acknowledges the whole batch.
                    None
                }
                Err(e) => Some(store_error(session, &e)),
            }
        }
        FastRequest::EndInterval { session, cpi } => {
            // Satellite fix: a NaN/negative/infinite CPI would poison
            // the session's CPI and run-length statistics permanently
            // (NaN propagates through every mean). Reject it with a
            // structured error and leave the session untouched.
            if !cpi.is_finite() || cpi < 0.0 {
                ServeCounters::bump(&shared.counters.invalid_cpi);
                return Some(Response::Error {
                    session,
                    code: ErrorCode::Malformed,
                    detail: format!("CPI must be finite and non-negative, got {cpi}"),
                });
            }
            let result = {
                let mut shard = shared.store.shard(session).lock();
                shard.touch(session).map(|live| live.end_interval(cpi))
            };
            match result {
                Ok(classified) => {
                    ServeCounters::bump(&shared.counters.intervals);
                    Some(Response::Classified {
                        session,
                        phase: classified.phase,
                        transition: classified.transition,
                        intervals: classified.intervals,
                    })
                }
                Err(e) => Some(store_error(session, &e)),
            }
        }
        FastRequest::Query { session, kind } => {
            let result = {
                let mut shard = shared.store.shard(session).lock();
                shard.touch(session).map(|live| live.query(kind))
            };
            match result {
                Ok(value) => {
                    ServeCounters::bump(&shared.counters.queries);
                    Some(Response::Answer {
                        session,
                        kind,
                        value,
                    })
                }
                Err(e) => Some(store_error(session, &e)),
            }
        }
        FastRequest::Close { session } => match shared.store.shard(session).lock().close(session) {
            Ok(()) => Some(Response::Ok { session }),
            Err(e) => Some(store_error(session, &e)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_gate_failure_closes_only_its_own_gate() {
        let now = Instant::now();
        let mut tcp = BackoffGate::new();
        let unix = BackoffGate::new();
        for _ in 0..10 {
            tcp.failure(now);
        }
        assert!(!tcp.ready(now), "failed gate must be closed");
        assert!(
            unix.ready(now),
            "sibling gate must be unaffected by the other listener's failures"
        );
        assert_eq!(unix.time_to_retry(now), None);
    }

    #[test]
    fn backoff_gate_doubles_and_caps() {
        let mut gate = BackoffGate::new();
        let now = Instant::now();
        let mut last = Duration::ZERO;
        for _ in 0..15 {
            gate.failure(now);
            let delay = gate.time_to_retry(now).expect("gate closed after failure");
            assert!(delay >= last, "backoff must be monotonic");
            assert!(delay <= BackoffGate::MAX, "backoff must cap at MAX");
            last = delay;
        }
        assert_eq!(last, BackoffGate::MAX);
    }

    #[test]
    fn backoff_gate_reopens_at_retry_time_and_resets_on_success() {
        let now = Instant::now();
        let mut gate = BackoffGate::new();
        gate.failure(now);
        assert!(!gate.ready(now));
        assert!(gate.ready(now + Duration::from_millis(2)));
        gate.failure(now);
        gate.success();
        assert!(gate.ready(now), "success must reopen immediately");
        gate.failure(now);
        assert_eq!(
            gate.time_to_retry(now),
            Some(Duration::from_millis(1)),
            "success must reset the backoff to its minimum"
        );
    }
}
