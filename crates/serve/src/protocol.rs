//! The serve wire protocol: tagged request/response payloads inside
//! length-prefixed frames ([`tpcp_trace::FrameReader`]).
//!
//! Every payload starts with a one-byte tag, then the session id as a
//! varint, then tag-specific fields using the trace codec's varint /
//! zigzag / f64-bits encodings (via [`tpcp_trace::wire`]) — event bytes
//! on the wire compress exactly like event bytes in a trace file.
//!
//! Decoding is total: any byte sequence decodes to either a `Request` or
//! a [`CodecError`], never a panic, and the server maps decode errors to
//! a structured [`Response::Error`] frame instead of dropping the
//! connection. Unknown tags are their own error code so a newer client
//! degrades loudly against an older server.

use tpcp_trace::{wire, CodecError};

/// Client-frame tags.
const TAG_HELLO: u8 = 0x01;
const TAG_EVENTS: u8 = 0x02;
const TAG_END_INTERVAL: u8 = 0x03;
const TAG_QUERY: u8 = 0x04;
const TAG_CLOSE: u8 = 0x05;

/// Server-frame tags.
const TAG_CLASSIFIED: u8 = 0x81;
const TAG_ANSWER: u8 = 0x82;
const TAG_OK: u8 = 0x83;
const TAG_DRAINING: u8 = 0x84;
const TAG_ERROR: u8 = 0x7f;

/// Which feature extractor a session's classifier runs (wire code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireExtractor {
    /// Basic-block-vector approximation (the paper's default).
    Bbv,
    /// Touched-region working-set bitmap.
    WorkingSet,
    /// Branch-mix histogram.
    BranchMix,
}

impl WireExtractor {
    /// All extractor codes, in wire order.
    pub const ALL: [Self; 3] = [Self::Bbv, Self::WorkingSet, Self::BranchMix];

    fn code(self) -> u8 {
        match self {
            Self::Bbv => 0,
            Self::WorkingSet => 1,
            Self::BranchMix => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, CodecError> {
        match code {
            0 => Ok(Self::Bbv),
            1 => Ok(Self::WorkingSet),
            2 => Ok(Self::BranchMix),
            _ => Err(CodecError::Truncated),
        }
    }

    /// The core extractor kind this wire code selects.
    pub fn kind(self) -> tpcp_core::ExtractorKind {
        match self {
            Self::Bbv => tpcp_core::ExtractorKind::Bbv,
            Self::WorkingSet => tpcp_core::ExtractorKind::WorkingSet,
            Self::BranchMix => tpcp_core::ExtractorKind::BranchMix,
        }
    }
}

/// What a query asks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// The session's most recent phase id.
    Phase,
    /// The predicted next phase (and whether the predictor is confident).
    NextPhase,
    /// The predicted run-length class of the current phase.
    RunLength,
}

impl QueryKind {
    /// All query kinds, in wire order.
    pub const ALL: [Self; 3] = [Self::Phase, Self::NextPhase, Self::RunLength];

    fn code(self) -> u8 {
        match self {
            Self::Phase => 0,
            Self::NextPhase => 1,
            Self::RunLength => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, CodecError> {
        match code {
            0 => Ok(Self::Phase),
            1 => Ok(Self::NextPhase),
            2 => Ok(Self::RunLength),
            _ => Err(CodecError::Truncated),
        }
    }
}

/// One committed-branch event on the wire: the PC as a zigzag delta from
/// the previous event *in the same frame* (the first event's delta is
/// from 0), and the instruction count since the previous event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEvent {
    /// Branch program counter.
    pub pc: u64,
    /// Instructions committed since the previous event.
    pub insns: u64,
}

/// A decoded client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open session `session` with the given extractor back-end.
    Hello {
        /// Session id (client-chosen, nonzero).
        session: u64,
        /// Which feature extractor the session's classifier uses.
        extractor: WireExtractor,
    },
    /// Feed committed-branch events into the session's current interval.
    Events {
        /// Session id.
        session: u64,
        /// The decoded events.
        events: Vec<WireEvent>,
    },
    /// Close the session's current interval with its measured CPI.
    EndInterval {
        /// Session id.
        session: u64,
        /// The interval's cycles-per-instruction feedback metric.
        cpi: f64,
    },
    /// Ask about the session's classification or prediction state.
    Query {
        /// Session id.
        session: u64,
        /// What to ask.
        kind: QueryKind,
    },
    /// Retire the session and free its table space.
    Close {
        /// Session id.
        session: u64,
    },
}

/// Structured error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame payload failed to decode.
    Malformed,
    /// The frame referenced a session that is neither live nor parked.
    UnknownSession,
    /// The frame declared a payload beyond the frame limit.
    Oversized,
    /// A `Hello` re-used a session id that is still live or parked.
    SessionExists,
    /// The server is draining and accepts no new work.
    Draining,
    /// The frame's tag byte is not part of this protocol version.
    BadTag,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            Self::Malformed => 1,
            Self::UnknownSession => 2,
            Self::Oversized => 3,
            Self::SessionExists => 4,
            Self::Draining => 5,
            Self::BadTag => 6,
        }
    }

    fn from_code(code: u8) -> Result<Self, CodecError> {
        match code {
            1 => Ok(Self::Malformed),
            2 => Ok(Self::UnknownSession),
            3 => Ok(Self::Oversized),
            4 => Ok(Self::SessionExists),
            5 => Ok(Self::Draining),
            6 => Ok(Self::BadTag),
            _ => Err(CodecError::Truncated),
        }
    }
}

/// A decoded server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The interval was classified (answer to `EndInterval`).
    Classified {
        /// Session id.
        session: u64,
        /// The phase the interval was classified into.
        phase: u64,
        /// Whether the interval is in the transition phase.
        transition: bool,
        /// Total intervals this session has classified.
        intervals: u64,
    },
    /// The answer to a `Query`.
    Answer {
        /// Session id.
        session: u64,
        /// Which query this answers.
        kind: QueryKind,
        /// `Some((value, confident))` when the session has an answer:
        /// a phase id for `Phase`/`NextPhase`, a run-length-class code
        /// for `RunLength`. `confident` is meaningful for `NextPhase`.
        value: Option<(u64, bool)>,
    },
    /// Acknowledges `Hello` and `Close`.
    Ok {
        /// Session id.
        session: u64,
    },
    /// The server is draining; the client should close.
    Draining,
    /// A structured per-session error; the connection stays usable
    /// unless the transport itself is broken.
    Error {
        /// Session id the failing frame named (0 when undecodable).
        session: u64,
        /// The structured error code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Self::Hello { session, extractor } => {
                buf.push(TAG_HELLO);
                wire::put_varint(&mut buf, *session);
                buf.push(extractor.code());
            }
            Self::Events { session, events } => {
                buf.push(TAG_EVENTS);
                wire::put_varint(&mut buf, *session);
                wire::put_varint(&mut buf, events.len() as u64);
                let mut prev_pc = 0u64;
                for ev in events {
                    wire::put_signed(&mut buf, ev.pc.wrapping_sub(prev_pc) as i64);
                    wire::put_varint(&mut buf, ev.insns);
                    prev_pc = ev.pc;
                }
            }
            Self::EndInterval { session, cpi } => {
                buf.push(TAG_END_INTERVAL);
                wire::put_varint(&mut buf, *session);
                wire::put_f64(&mut buf, *cpi);
            }
            Self::Query { session, kind } => {
                buf.push(TAG_QUERY);
                wire::put_varint(&mut buf, *session);
                buf.push(kind.code());
            }
            Self::Close { session } => {
                buf.push(TAG_CLOSE);
                wire::put_varint(&mut buf, *session);
            }
        }
        buf
    }

    /// Decodes a frame payload into a request.
    ///
    /// The error side carries the session id when it decoded before the
    /// failure (so the server can address its error frame) and `0`
    /// otherwise. An unknown tag is distinguished from a malformed body.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeFailure> {
        let mut pos = 0usize;
        let tag = wire::read_u8(payload, &mut pos).map_err(|e| DecodeFailure {
            session: 0,
            code: ErrorCode::Malformed,
            error: e,
        })?;
        if !matches!(
            tag,
            TAG_HELLO | TAG_EVENTS | TAG_END_INTERVAL | TAG_QUERY | TAG_CLOSE
        ) {
            return Err(DecodeFailure {
                session: 0,
                code: ErrorCode::BadTag,
                error: CodecError::Truncated,
            });
        }
        let session = wire::read_varint(payload, &mut pos).map_err(|e| DecodeFailure {
            session: 0,
            code: ErrorCode::Malformed,
            error: e,
        })?;
        let fail = |error: CodecError| DecodeFailure {
            session,
            code: ErrorCode::Malformed,
            error,
        };
        let decoded = match tag {
            TAG_HELLO => {
                let extractor =
                    WireExtractor::from_code(wire::read_u8(payload, &mut pos).map_err(fail)?)
                        .map_err(fail)?;
                Self::Hello { session, extractor }
            }
            TAG_EVENTS => {
                let count = wire::read_varint(payload, &mut pos).map_err(fail)?;
                // OOM guard: every event needs at least 2 payload bytes,
                // so bound the declared count against what is actually
                // present before allocating.
                let remaining = payload.len().saturating_sub(pos) as u64;
                if count > remaining / 2 {
                    return Err(fail(CodecError::ImplausibleLength));
                }
                let mut events = Vec::with_capacity(count as usize);
                let mut pc = 0u64;
                for _ in 0..count {
                    let delta = wire::read_signed(payload, &mut pos).map_err(fail)?;
                    pc = pc.wrapping_add(delta as u64);
                    let insns = wire::read_varint(payload, &mut pos).map_err(fail)?;
                    events.push(WireEvent { pc, insns });
                }
                Self::Events { session, events }
            }
            TAG_END_INTERVAL => Self::EndInterval {
                session,
                cpi: wire::read_f64(payload, &mut pos).map_err(fail)?,
            },
            TAG_QUERY => Self::Query {
                session,
                kind: QueryKind::from_code(wire::read_u8(payload, &mut pos).map_err(fail)?)
                    .map_err(fail)?,
            },
            // Tag membership was checked above.
            _ => Self::Close { session },
        };
        if pos != payload.len() {
            return Err(fail(CodecError::Truncated));
        }
        Ok(decoded)
    }
}

/// A decoded client frame *header*, with `Events` payloads decoded
/// straight into a caller-owned buffer instead of a fresh `Vec`.
///
/// This is the server's hot-path view of [`Request`]: one
/// [`decode_request_into`] call per frame fills a reused
/// [`BranchEvent`](tpcp_core::BranchEvent) scratch buffer (wire `insns`
/// saturated to the event type's `u32` during decode), so a frame of N
/// events costs zero allocations and one batched `observe` call
/// downstream. [`Request::decode`] remains the allocation-per-frame
/// client-side view; the two decoders accept and reject byte-identical
/// inputs (pinned by the protocol fuzz tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FastRequest {
    /// `Hello`: open a session.
    Hello {
        /// Session id (client-chosen, nonzero).
        session: u64,
        /// Which feature extractor the session's classifier uses.
        extractor: WireExtractor,
    },
    /// `Events`: the decoded events are in the scratch buffer.
    Events {
        /// Session id.
        session: u64,
    },
    /// `EndInterval`: close the session's current interval.
    EndInterval {
        /// Session id.
        session: u64,
        /// The interval's cycles-per-instruction feedback metric.
        cpi: f64,
    },
    /// `Query`: ask about classification or prediction state.
    Query {
        /// Session id.
        session: u64,
        /// What to ask.
        kind: QueryKind,
    },
    /// `Close`: retire the session.
    Close {
        /// Session id.
        session: u64,
    },
}

/// Decodes a frame payload into a [`FastRequest`], filling `events` with
/// the frame's event batch (cleared first; empty for non-`Events` tags).
///
/// Accepts and rejects exactly the inputs [`Request::decode`] does,
/// including the `count > remaining / 2` over-allocation guard and the
/// trailing-byte check.
pub fn decode_request_into(
    payload: &[u8],
    events: &mut Vec<tpcp_core::BranchEvent>,
) -> Result<FastRequest, DecodeFailure> {
    events.clear();
    let decoded = decode_request_into_inner(payload, events);
    if decoded.is_err() {
        // A rejected frame must leave nothing behind — a half-decoded
        // event batch from a truncated body must not reach the next
        // frame's observe call.
        events.clear();
    }
    decoded
}

fn decode_request_into_inner(
    payload: &[u8],
    events: &mut Vec<tpcp_core::BranchEvent>,
) -> Result<FastRequest, DecodeFailure> {
    let mut pos = 0usize;
    let tag = wire::read_u8(payload, &mut pos).map_err(|e| DecodeFailure {
        session: 0,
        code: ErrorCode::Malformed,
        error: e,
    })?;
    if !matches!(
        tag,
        TAG_HELLO | TAG_EVENTS | TAG_END_INTERVAL | TAG_QUERY | TAG_CLOSE
    ) {
        return Err(DecodeFailure {
            session: 0,
            code: ErrorCode::BadTag,
            error: CodecError::Truncated,
        });
    }
    let session = wire::read_varint(payload, &mut pos).map_err(|e| DecodeFailure {
        session: 0,
        code: ErrorCode::Malformed,
        error: e,
    })?;
    let fail = |error: CodecError| DecodeFailure {
        session,
        code: ErrorCode::Malformed,
        error,
    };
    let decoded = match tag {
        TAG_HELLO => {
            let extractor =
                WireExtractor::from_code(wire::read_u8(payload, &mut pos).map_err(fail)?)
                    .map_err(fail)?;
            FastRequest::Hello { session, extractor }
        }
        TAG_EVENTS => {
            let count = wire::read_varint(payload, &mut pos).map_err(fail)?;
            // Same over-allocation guard as `Request::decode`: at least
            // 2 payload bytes per event must actually be present.
            let remaining = payload.len().saturating_sub(pos) as u64;
            if count > remaining / 2 {
                return Err(fail(CodecError::ImplausibleLength));
            }
            events.reserve(count as usize);
            let mut pc = 0u64;
            for _ in 0..count {
                let delta = wire::read_signed(payload, &mut pos).map_err(fail)?;
                pc = pc.wrapping_add(delta as u64);
                let insns = wire::read_varint(payload, &mut pos).map_err(fail)?;
                // Wire insns are varint u64; the event type carries u32.
                // Saturate deterministically.
                events.push(tpcp_core::BranchEvent::new(
                    pc,
                    insns.min(u64::from(u32::MAX)) as u32,
                ));
            }
            FastRequest::Events { session }
        }
        TAG_END_INTERVAL => FastRequest::EndInterval {
            session,
            cpi: wire::read_f64(payload, &mut pos).map_err(fail)?,
        },
        TAG_QUERY => FastRequest::Query {
            session,
            kind: QueryKind::from_code(wire::read_u8(payload, &mut pos).map_err(fail)?)
                .map_err(fail)?,
        },
        // Tag membership was checked above.
        _ => FastRequest::Close { session },
    };
    if pos != payload.len() {
        return Err(fail(CodecError::Truncated));
    }
    Ok(decoded)
}

/// Why a client frame failed to decode: the structured code and session
/// id the server should put in its error response, plus the underlying
/// codec error for the detail string.
#[derive(Debug)]
pub struct DecodeFailure {
    /// Session id if it decoded before the failure, else 0.
    pub session: u64,
    /// The structured error code to report.
    pub code: ErrorCode,
    /// The underlying codec error.
    pub error: CodecError,
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Self::Classified {
                session,
                phase,
                transition,
                intervals,
            } => {
                buf.push(TAG_CLASSIFIED);
                wire::put_varint(&mut buf, *session);
                wire::put_varint(&mut buf, *phase);
                buf.push(u8::from(*transition));
                wire::put_varint(&mut buf, *intervals);
            }
            Self::Answer {
                session,
                kind,
                value,
            } => {
                buf.push(TAG_ANSWER);
                wire::put_varint(&mut buf, *session);
                buf.push(kind.code());
                match value {
                    Some((v, confident)) => {
                        buf.push(1);
                        wire::put_varint(&mut buf, *v);
                        buf.push(u8::from(*confident));
                    }
                    None => buf.push(0),
                }
            }
            Self::Ok { session } => {
                buf.push(TAG_OK);
                wire::put_varint(&mut buf, *session);
            }
            Self::Draining => buf.push(TAG_DRAINING),
            Self::Error {
                session,
                code,
                detail,
            } => {
                buf.push(TAG_ERROR);
                wire::put_varint(&mut buf, *session);
                buf.push(code.code());
                let detail = detail.as_bytes();
                wire::put_varint(&mut buf, detail.len() as u64);
                buf.extend_from_slice(detail);
            }
        }
        buf
    }

    /// Decodes a frame payload into a response (used by clients).
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut pos = 0usize;
        let tag = wire::read_u8(payload, &mut pos)?;
        let decoded = match tag {
            TAG_CLASSIFIED => {
                let session = wire::read_varint(payload, &mut pos)?;
                let phase = wire::read_varint(payload, &mut pos)?;
                let transition = wire::read_u8(payload, &mut pos)? != 0;
                let intervals = wire::read_varint(payload, &mut pos)?;
                Self::Classified {
                    session,
                    phase,
                    transition,
                    intervals,
                }
            }
            TAG_ANSWER => {
                let session = wire::read_varint(payload, &mut pos)?;
                let kind = QueryKind::from_code(wire::read_u8(payload, &mut pos)?)?;
                let value = if wire::read_u8(payload, &mut pos)? != 0 {
                    let v = wire::read_varint(payload, &mut pos)?;
                    let confident = wire::read_u8(payload, &mut pos)? != 0;
                    Some((v, confident))
                } else {
                    None
                };
                Self::Answer {
                    session,
                    kind,
                    value,
                }
            }
            TAG_OK => Self::Ok {
                session: wire::read_varint(payload, &mut pos)?,
            },
            TAG_DRAINING => Self::Draining,
            TAG_ERROR => {
                let session = wire::read_varint(payload, &mut pos)?;
                let code = ErrorCode::from_code(wire::read_u8(payload, &mut pos)?)?;
                let len = wire::read_varint(payload, &mut pos)?;
                let remaining = payload.len().saturating_sub(pos) as u64;
                if len > remaining {
                    return Err(CodecError::ImplausibleLength);
                }
                let end = pos + len as usize;
                let detail = String::from_utf8_lossy(&payload[pos..end]).into_owned();
                pos = end;
                Self::Error {
                    session,
                    code,
                    detail,
                }
            }
            _ => return Err(CodecError::Truncated),
        };
        if pos != payload.len() {
            return Err(CodecError::Truncated);
        }
        Ok(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Hello {
                session: 7,
                extractor: WireExtractor::WorkingSet,
            },
            Request::Events {
                session: 7,
                events: vec![
                    WireEvent {
                        pc: 0x40_0000,
                        insns: 120,
                    },
                    WireEvent {
                        pc: 0x3f_fff0,
                        insns: 4,
                    },
                ],
            },
            Request::EndInterval {
                session: 7,
                cpi: 1.375,
            },
            Request::Query {
                session: 7,
                kind: QueryKind::NextPhase,
            },
            Request::Close { session: 7 },
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).expect("round trip");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Classified {
                session: 3,
                phase: 12,
                transition: true,
                intervals: 900,
            },
            Response::Answer {
                session: 3,
                kind: QueryKind::RunLength,
                value: Some((2, true)),
            },
            Response::Answer {
                session: 3,
                kind: QueryKind::Phase,
                value: None,
            },
            Response::Ok { session: 3 },
            Response::Draining,
            Response::Error {
                session: 0,
                code: ErrorCode::Malformed,
                detail: "varint ran off the end".to_owned(),
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).expect("round trip");
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn unknown_tag_is_bad_tag_not_malformed() {
        let failure = Request::decode(&[0x60, 0x01]).expect_err("unknown tag");
        assert_eq!(failure.code, ErrorCode::BadTag);
        assert_eq!(failure.session, 0);
    }

    #[test]
    fn malformed_body_reports_the_session_it_decoded() {
        // A QUERY naming session 9 with a missing kind byte.
        let failure = Request::decode(&[TAG_QUERY, 9]).expect_err("missing kind");
        assert_eq!(failure.code, ErrorCode::Malformed);
        assert_eq!(failure.session, 9);
    }

    #[test]
    fn event_count_is_bounded_before_allocation() {
        // EVENTS declaring u64::MAX events with 2 bytes of payload: the
        // count must be rejected by the plausibility bound, not trusted
        // into a Vec::with_capacity.
        let mut buf = vec![TAG_EVENTS, 1];
        wire::put_varint(&mut buf, u64::MAX);
        buf.extend_from_slice(&[0, 0]);
        let failure = Request::decode(&buf).expect_err("implausible count");
        assert_eq!(failure.code, ErrorCode::Malformed);
        assert!(matches!(failure.error, CodecError::ImplausibleLength));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Request::Close { session: 1 }.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn every_request_prefix_truncation_errors_without_panicking() {
        let full = Request::Events {
            session: 1,
            events: vec![
                WireEvent {
                    pc: 0x1000,
                    insns: 50
                };
                8
            ],
        }
        .encode();
        for len in 0..full.len() {
            assert!(Request::decode(&full[..len]).is_err(), "prefix {len}");
        }
    }
}
