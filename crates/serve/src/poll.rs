//! A minimal safe wrapper over `poll(2)` for the worker-pool readiness
//! loop, plus the one other socket syscall the server needs
//! ([`set_listen_backlog`]).
//!
//! The workspace vendors no `libc`, so the syscalls are declared here
//! directly. This module is the crate's only `unsafe` surface (the crate
//! root is `#![deny(unsafe_code)]`): a `#[repr(C)]` pollfd mirror and
//! two FFI calls whose invariants are local — the pointer and length
//! come from one live slice, and the listen fd from a live listener.

use std::io;
use std::os::fd::RawFd;

/// Readable data (or a connection on a listener) is available.
pub const POLLIN: i16 = 0x001;
/// Writing would no longer block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd was not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// Mirror of C's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A pollfd watching `fd` for `events`, with `revents` cleared.
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the fd is ready or failed — any returned event counts,
    /// because error states must reach the owner (a read on the fd will
    /// surface the actual error).
    pub fn ready(&self) -> bool {
        self.revents & (POLLIN | POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[allow(unsafe_code)]
mod sys {
    use super::PollFd;
    use std::os::raw::{c_int, c_ulong};

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
    }

    /// Invokes `poll(2)` over the slice.
    pub(super) fn poll_raw(fds: &mut [PollFd], timeout_ms: i32) -> c_int {
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs; the kernel writes only `revents`
        // within the `len()` entries passed.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) }
    }

    /// Re-invokes `listen(2)` on an already-listening fd.
    pub(super) fn listen_raw(fd: c_int, backlog: c_int) -> c_int {
        // SAFETY: no memory is passed; `fd` comes from a live listener
        // owned by the caller.
        unsafe { listen(fd, backlog) }
    }
}

/// Waits until at least one fd in `fds` is ready or `timeout` expires.
/// Returns how many entries have events. `EINTR` is reported as ready
/// count 0 (the caller's loop re-evaluates and re-polls), every other
/// failure as the underlying `io::Error`.
pub fn poll(fds: &mut [PollFd], timeout: std::time::Duration) -> io::Result<usize> {
    for slot in fds.iter_mut() {
        slot.revents = 0;
    }
    let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
    let rc = sys::poll_raw(fds, timeout_ms);
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// Grows the accept backlog of an already-listening socket by calling
/// `listen(2)` again on its fd (POSIX permits re-listening; only the
/// queue depth changes). The standard library hardwires a backlog of
/// 128, which a fleet of hundreds of clients connecting at once
/// overflows — and an overflowed queue drops SYNs, stalling each
/// affected client for a full TCP retransmission timeout.
pub fn set_listen_backlog(fd: RawFd, backlog: u32) -> io::Result<()> {
    let backlog = i32::try_from(backlog).unwrap_or(i32::MAX);
    if sys::listen_raw(fd, backlog) < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn relisten_grows_backlog_without_breaking_accepts() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        set_listen_backlog(listener.as_raw_fd(), 1024).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (_accepted, _) = listener.accept().unwrap();
        drop(client);
    }

    #[test]
    fn poll_times_out_on_silent_socket() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, Duration::from_millis(10)).unwrap();
        assert_eq!(ready, 0);
        assert!(!fds[0].ready());
    }

    #[test]
    fn poll_reports_readable_after_write() {
        let (a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.write_all(&[1]).unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, Duration::from_millis(1000)).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].ready());
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn poll_reports_hangup_on_dropped_peer() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, Duration::from_millis(1000)).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].ready());
    }

    #[test]
    fn poll_reports_writable_socket() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let ready = poll(&mut fds, Duration::from_millis(1000)).unwrap();
        assert_eq!(ready, 1);
        assert_ne!(fds[0].revents & POLLOUT, 0);
    }
}
