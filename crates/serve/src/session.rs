//! Per-session classifier state with a bounded live set, LRU eviction to
//! snapshots, and deterministic re-admission.
//!
//! Each session owns a [`PhaseClassifier`] plus a next-phase and a
//! run-length predictor. The store keeps at most `max_live` sessions
//! materialized; the least-recently-used session beyond that is *parked*:
//! its classifier is serialized to the `TPCPSNP1` snapshot format (a few
//! hundred bytes instead of a full accumulator + signature table) and its
//! predictors — already small — move aside as-is. Touching a parked
//! session restores the classifier from its snapshot, which is
//! bit-identical by the core crate's snapshot guarantee, so an evicted
//! session's future classifications match a never-evicted twin exactly.
//!
//! The parked set is bounded too (`max_parked`): beyond it the oldest
//! parked session is dropped and counted — the one deliberately lossy
//! edge of the memory-pressure ladder, visible in telemetry rather than
//! as an OOM.

use std::collections::HashMap;

use tpcp_core::{BranchEvent, ClassifierConfig, PhaseClassifier, PhaseId, SnapshotError};
use tpcp_predict::{LengthClassPredictor, NextPhasePredictor, PredictorKind};

use crate::protocol::{QueryKind, WireExtractor};

/// A live session: materialized classifier plus predictors.
#[derive(Debug)]
pub struct Session {
    classifier: PhaseClassifier,
    next: NextPhasePredictor,
    length: LengthClassPredictor,
    last_phase: Option<PhaseId>,
    intervals: u64,
    stamp: u64,
}

/// One classified interval, as reported to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classified {
    /// The phase id the interval landed in.
    pub phase: u64,
    /// Whether that is the transition phase.
    pub transition: bool,
    /// Total intervals this session has classified.
    pub intervals: u64,
}

impl Session {
    fn new(extractor: WireExtractor) -> Self {
        Self {
            classifier: PhaseClassifier::new(
                ClassifierConfig::builder()
                    .extractor(extractor.kind())
                    .build(),
            ),
            next: NextPhasePredictor::new(PredictorKind::rle(2)),
            length: LengthClassPredictor::new(32, 4),
            last_phase: None,
            intervals: 0,
            stamp: 0,
        }
    }

    /// Feeds events into the current interval.
    pub fn observe(&mut self, events: impl IntoIterator<Item = BranchEvent>) {
        for ev in events {
            self.classifier.observe(ev);
        }
    }

    /// Feeds one decoded frame's event batch into the current interval —
    /// the serve hot path: one call per frame, no per-event dispatch
    /// through the store.
    pub fn observe_batch(&mut self, events: &[BranchEvent]) {
        for &ev in events {
            self.classifier.observe(ev);
        }
    }

    /// Closes the current interval, feeding the phase into both
    /// predictors.
    pub fn end_interval(&mut self, cpi: f64) -> Classified {
        let result = self.classifier.end_interval_detailed(cpi);
        self.next.observe(result.phase_id);
        self.length.observe(result.phase_id);
        self.last_phase = Some(result.phase_id);
        self.intervals += 1;
        Classified {
            phase: u64::from(result.phase_id.value()),
            transition: result.phase_id.is_transition(),
            intervals: self.intervals,
        }
    }

    /// Answers a query: `(value, confident)` or `None` when the session
    /// has no answer yet.
    pub fn query(&self, kind: QueryKind) -> Option<(u64, bool)> {
        match kind {
            QueryKind::Phase => self.last_phase.map(|id| (u64::from(id.value()), true)),
            QueryKind::NextPhase => self
                .next
                .current_prediction()
                .map(|(id, confident)| (u64::from(id.value()), confident)),
            QueryKind::RunLength => self
                .length
                .current_prediction()
                .map(|class| (class as u64, true)),
        }
    }
}

/// A parked (evicted) session: the classifier as snapshot bytes, the
/// predictors moved aside intact.
#[derive(Debug)]
struct ParkedSession {
    snapshot: Vec<u8>,
    next: NextPhasePredictor,
    length: LengthClassPredictor,
    last_phase: Option<PhaseId>,
    intervals: u64,
    stamp: u64,
}

/// Counters the store bumps; folded into serve telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Sessions created by `Hello`.
    pub created: u64,
    /// Live sessions evicted (snapshotted and parked).
    pub evictions: u64,
    /// Parked sessions restored back to live.
    pub restores: u64,
    /// Parked sessions dropped because the parked set overflowed.
    pub parked_drops: u64,
    /// Sessions retired by `Close`.
    pub closed: u64,
}

/// Errors the store reports to the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The session id is neither live nor parked.
    UnknownSession,
    /// A `Hello` re-used an id that is still live or parked.
    SessionExists,
    /// A parked snapshot failed to restore. Unreachable for snapshots the
    /// store wrote itself; kept as an error so a future bug degrades one
    /// session instead of the process.
    Restore(SnapshotError),
}

/// Bounded two-tier session table: `max_live` materialized sessions with
/// LRU eviction into at most `max_parked` snapshots.
#[derive(Debug)]
pub struct SessionStore {
    live: HashMap<u64, Session>,
    parked: HashMap<u64, ParkedSession>,
    max_live: usize,
    max_parked: usize,
    clock: u64,
    counters: StoreCounters,
}

impl SessionStore {
    /// An empty store bounded to `max_live` materialized sessions and
    /// `max_parked` parked snapshots (both clamped to at least 1).
    pub fn new(max_live: usize, max_parked: usize) -> Self {
        Self {
            live: HashMap::new(),
            parked: HashMap::new(),
            max_live: max_live.max(1),
            max_parked: max_parked.max(1),
            clock: 0,
            counters: StoreCounters::default(),
        }
    }

    /// The store's counters so far.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// Live and parked session counts.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.live.len(), self.parked.len())
    }

    /// Creates a session, evicting the LRU live session if the live set
    /// is full.
    pub fn open(&mut self, id: u64, extractor: WireExtractor) -> Result<(), StoreError> {
        if self.live.contains_key(&id) || self.parked.contains_key(&id) {
            return Err(StoreError::SessionExists);
        }
        self.make_room();
        let mut session = Session::new(extractor);
        self.clock += 1;
        session.stamp = self.clock;
        self.live.insert(id, session);
        self.counters.created += 1;
        Ok(())
    }

    /// Retires a session (live or parked).
    pub fn close(&mut self, id: u64) -> Result<(), StoreError> {
        if self.live.remove(&id).is_some() || self.parked.remove(&id).is_some() {
            self.counters.closed += 1;
            Ok(())
        } else {
            Err(StoreError::UnknownSession)
        }
    }

    /// Looks up a session for work, restoring it from its parked
    /// snapshot if it was evicted, and refreshing its LRU stamp.
    pub fn touch(&mut self, id: u64) -> Result<&mut Session, StoreError> {
        if !self.live.contains_key(&id) {
            let parked = self.parked.remove(&id).ok_or(StoreError::UnknownSession)?;
            let classifier = match PhaseClassifier::from_snapshot(&parked.snapshot) {
                Ok(c) => c,
                Err(e) => return Err(StoreError::Restore(e)),
            };
            self.make_room();
            self.live.insert(
                id,
                Session {
                    classifier,
                    next: parked.next,
                    length: parked.length,
                    last_phase: parked.last_phase,
                    intervals: parked.intervals,
                    stamp: parked.stamp,
                },
            );
            self.counters.restores += 1;
        }
        self.clock += 1;
        let clock = self.clock;
        // The entry is present: either it was live above, or the parked
        // branch just inserted it.
        #[allow(clippy::expect_used)]
        let session = self.live.get_mut(&id).expect("session inserted above");
        session.stamp = clock;
        Ok(session)
    }

    /// Evicts the LRU live session into the parked set if the live set is
    /// at capacity, dropping the oldest parked session if *that* set is at
    /// capacity — bounded memory at every tier.
    fn make_room(&mut self) {
        while self.live.len() >= self.max_live {
            let Some(victim) = self
                .live
                .iter()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(&id, _)| id)
            else {
                return;
            };
            // Present by construction: `victim` came out of the map.
            #[allow(clippy::expect_used)]
            let session = self.live.remove(&victim).expect("victim is live");
            while self.parked.len() >= self.max_parked {
                let Some(oldest) = self
                    .parked
                    .iter()
                    .min_by_key(|(_, p)| p.stamp)
                    .map(|(&id, _)| id)
                else {
                    break;
                };
                self.parked.remove(&oldest);
                self.counters.parked_drops += 1;
            }
            self.parked.insert(
                victim,
                ParkedSession {
                    snapshot: session.classifier.snapshot(),
                    next: session.next,
                    length: session.length,
                    last_phase: session.last_phase,
                    intervals: session.intervals,
                    stamp: session.stamp,
                },
            );
            self.counters.evictions += 1;
        }
    }
}

/// [`SessionStore`] sharded by session-id hash: each shard is an
/// independently locked two-tier LRU, so sessions that hash to different
/// shards never contend on a lock and never share an eviction clock.
///
/// Sharding changes *which* sessions are evicted under pressure (each
/// shard runs its own LRU over roughly `1/shards` of the capacity) but
/// never *what* an evicted session computes: eviction goes through the
/// same `TPCPSNP1` snapshot, so a session's classifications are
/// bit-identical under any shard count — pinned by the shard-equivalence
/// test against the single-lock store.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<parking_lot::Mutex<SessionStore>>,
}

impl ShardedStore {
    /// A sharded store with `shards` shards (clamped to at least 1)
    /// splitting `max_live` / `max_parked` capacity evenly, rounding up
    /// so total capacity never shrinks below the configured bounds.
    pub fn new(shards: usize, max_live: usize, max_parked: usize) -> Self {
        let shards = shards.max(1);
        let live_per = max_live.div_ceil(shards).max(1);
        let parked_per = max_parked.div_ceil(shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| parking_lot::Mutex::new(SessionStore::new(live_per, parked_per)))
                .collect(),
        }
    }

    /// How many shards this store runs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `session` lives in.
    pub fn shard_index(&self, session: u64) -> usize {
        // splitmix64 finalizer: session ids are often sequential, and a
        // plain modulo would put ids 0..k in the first k shards.
        let mut z = session.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// The shard lock owning `session`. All store operations for the
    /// session run under this one mutex.
    pub fn shard(&self, session: u64) -> &parking_lot::Mutex<SessionStore> {
        &self.shards[self.shard_index(session)]
    }

    /// Store counters summed across shards.
    pub fn counters(&self) -> StoreCounters {
        let mut total = StoreCounters::default();
        for shard in &self.shards {
            let c = shard.lock().counters();
            total.created += c.created;
            total.evictions += c.evictions;
            total.restores += c.restores;
            total.parked_drops += c.parked_drops;
            total.closed += c.closed;
        }
        total
    }

    /// `(live, parked)` occupancy per shard, in shard order.
    pub fn occupancy(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| s.lock().occupancy()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_intervals(session: &mut Session, seed: u64, intervals: u64) -> Vec<Classified> {
        let mut out = Vec::new();
        for i in 0..intervals {
            let base = 0x1000 + (seed.wrapping_add(i) % 5) * 0x11_0000;
            session.observe((0..16).map(|j| BranchEvent::new(base + j * 0x40, 30)));
            out.push(session.end_interval(1.0 + ((seed + i) % 7) as f64 * 0.25));
        }
        out
    }

    /// Satellite: evict → snapshot → re-admit must be bit-identical to a
    /// never-evicted session, for every extractor back-end.
    #[test]
    fn evicted_and_readmitted_session_matches_unevicted_twin() {
        for extractor in WireExtractor::ALL {
            // Store A: session 1 never evicted (big live set).
            let mut a = SessionStore::new(8, 8);
            // Store B: session 1 evicted by filling a 1-slot live set.
            let mut b = SessionStore::new(1, 8);
            a.open(1, extractor).unwrap();
            b.open(1, extractor).unwrap();

            let warm_a = drive_intervals(a.touch(1).unwrap(), 3, 10);
            let warm_b = drive_intervals(b.touch(1).unwrap(), 3, 10);
            assert_eq!(warm_a, warm_b);

            // Evict session 1 from B by opening session 2.
            b.open(2, extractor).unwrap();
            assert_eq!(b.counters().evictions, 1, "{extractor:?}");
            assert_eq!(b.occupancy(), (1, 1));

            // Touch re-admits deterministically; subsequent streams and
            // queries must match the unevicted twin exactly.
            let cold = drive_intervals(b.touch(1).unwrap(), 11, 20);
            assert_eq!(b.counters().restores, 1);
            let warm = drive_intervals(a.touch(1).unwrap(), 11, 20);
            assert_eq!(warm, cold, "{extractor:?} diverged after re-admission");
            for kind in QueryKind::ALL {
                assert_eq!(
                    a.touch(1).unwrap().query(kind),
                    b.touch(1).unwrap().query(kind),
                    "{extractor:?} {kind:?} query diverged"
                );
            }
        }
    }

    #[test]
    fn parked_overflow_drops_oldest_and_counts_it() {
        let mut store = SessionStore::new(1, 2);
        for id in 1..=4 {
            store.open(id, WireExtractor::Bbv).unwrap();
        }
        // Live holds 4; parked held 1,2 then dropped 1 to park 3.
        assert_eq!(store.counters().evictions, 3);
        assert_eq!(store.counters().parked_drops, 1);
        assert_eq!(store.occupancy(), (1, 2));
        assert!(matches!(store.touch(1), Err(StoreError::UnknownSession)));
        assert!(store.touch(2).is_ok());
    }

    #[test]
    fn duplicate_open_and_unknown_close_are_structured_errors() {
        let mut store = SessionStore::new(4, 4);
        store.open(1, WireExtractor::Bbv).unwrap();
        assert!(matches!(
            store.open(1, WireExtractor::Bbv),
            Err(StoreError::SessionExists)
        ));
        assert!(matches!(store.close(9), Err(StoreError::UnknownSession)));
        store.close(1).unwrap();
        assert!(matches!(store.touch(1), Err(StoreError::UnknownSession)));
    }

    /// Satellite: the sharded store must be bit-identical to the
    /// single-lock store for every session's outputs, across all three
    /// extractors, while both stores churn through evictions.
    #[test]
    fn sharded_store_matches_single_lock_store_under_eviction_churn() {
        const SESSIONS: u64 = 12;
        const ROUNDS: u64 = 6;
        // Live capacity small enough that both stores evict constantly;
        // parked capacity large enough that nothing is dropped (a
        // dropped session is gone, not comparable).
        let sharded = ShardedStore::new(4, 4, 64);
        let mut single = SessionStore::new(4, 64);
        for id in 1..=SESSIONS {
            let extractor = WireExtractor::ALL[(id % 3) as usize];
            sharded.shard(id).lock().open(id, extractor).unwrap();
            single.open(id, extractor).unwrap();
        }
        for round in 0..ROUNDS {
            for id in 1..=SESSIONS {
                // Interleave sessions so LRU order differs between the
                // sharded and single stores — outputs must not care.
                let seed = id.wrapping_mul(41) + round;
                let base = 0x2000 + (seed % 5) * 0x21_0000;
                let events: Vec<BranchEvent> = (0..16)
                    .map(|j| BranchEvent::new(base + j * 0x40, 25))
                    .collect();
                let cpi = 0.9 + ((seed % 9) as f64) * 0.3;
                let from_sharded = {
                    let mut shard = sharded.shard(id).lock();
                    let live = shard.touch(id).unwrap();
                    live.observe_batch(&events);
                    live.end_interval(cpi)
                };
                let from_single = {
                    let live = single.touch(id).unwrap();
                    live.observe(events.iter().copied());
                    live.end_interval(cpi)
                };
                assert_eq!(
                    from_sharded, from_single,
                    "session {id} round {round} diverged"
                );
                for kind in QueryKind::ALL {
                    let a = sharded.shard(id).lock().touch(id).unwrap().query(kind);
                    let b = single.touch(id).unwrap().query(kind);
                    assert_eq!(a, b, "session {id} round {round} {kind:?} diverged");
                }
            }
        }
        let totals = sharded.counters();
        assert!(totals.evictions > 0, "sharded store never evicted");
        assert!(
            single.counters().evictions > 0,
            "single store never evicted"
        );
        assert_eq!(totals.created, SESSIONS);
        // Shard capacity splits evenly and every shard stays bounded.
        for (live, parked) in sharded.occupancy() {
            assert!(live <= 1, "per-shard live cap exceeded: {live}");
            assert!(parked <= 16, "per-shard parked cap exceeded: {parked}");
        }
        assert_eq!(totals.parked_drops, 0, "a comparison session was dropped");
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let store = ShardedStore::new(8, 64, 64);
        for id in 0..1024u64 {
            let idx = store.shard_index(id);
            assert!(idx < 8);
            assert_eq!(idx, store.shard_index(id), "shard index must be stable");
        }
        // The hash must actually spread sequential ids.
        let hit: std::collections::HashSet<usize> =
            (0..1024u64).map(|id| store.shard_index(id)).collect();
        assert_eq!(hit.len(), 8, "sequential ids landed in only {hit:?}");
    }

    #[test]
    fn sharded_store_with_one_shard_keeps_full_capacity() {
        let store = ShardedStore::new(1, 3, 3);
        for id in 1..=3 {
            store.shard(id).lock().open(id, WireExtractor::Bbv).unwrap();
        }
        assert_eq!(store.counters().evictions, 0);
        assert_eq!(store.occupancy(), vec![(3, 0)]);
    }

    #[test]
    fn close_reaches_parked_sessions_too() {
        let mut store = SessionStore::new(1, 4);
        store.open(1, WireExtractor::Bbv).unwrap();
        store.open(2, WireExtractor::Bbv).unwrap();
        assert_eq!(store.occupancy(), (1, 1));
        store.close(1).unwrap();
        assert_eq!(store.occupancy(), (1, 0));
    }
}
