//! The worker-pool serve mode: one dispatcher thread multiplexing every
//! connection fd through `poll(2)`, and a small fixed pool of workers
//! doing the reads, decodes, classifier work, and writes — so N
//! connections cost N fds, not N threads.
//!
//! # Shape
//!
//! The dispatcher owns the listeners, a self-wake pipe, and every
//! *parked* (idle) connection. Each loop it polls the parked fds for
//! readability (and writability, when a connection has queued output),
//! then hands ready connections to the workers over an `mpsc` channel.
//! A worker runs one *turn* on the connection — flush pending output,
//! decode and execute buffered frames, read until the socket would
//! block — and hands it back. Ownership of a connection moves between
//! dispatcher and worker, never shared, so per-connection state needs no
//! locks and responses stay in request order by construction.
//!
//! # Invariants the turn loop maintains
//!
//! - **Backpressure without blocked threads**: a connection with
//!   `response_queue` undelivered responses stops being *read* (its
//!   requests back up into the kernel buffer and TCP flow control does
//!   the rest); workers never block on a slow reader.
//! - **No lost bytes across turns**: partially read frames persist in
//!   the connection's [`FrameDecoder`]; a complete frame that could not
//!   be executed yet (response cap) is re-dispatched as soon as output
//!   drains — buffered work never waits on socket readability.
//! - **Deadlines from the dispatcher**: a mid-frame connection with no
//!   progress for `read_timeout` is a stall; a connection idle at a
//!   frame boundary past `idle_timeout` is closed; a connection whose
//!   output has not drained for `write_timeout` is a dead reader.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use tpcp_core::BranchEvent;
use tpcp_trace::{FrameDecoder, FrameError};

use crate::poll::{self, PollFd, POLLIN, POLLOUT};
use crate::protocol::{self, DecodeFailure, ErrorCode, Response};
use crate::server::{execute, BackoffGate, ServeConfig, Shared};
use crate::telemetry::{ServeCounters, ServeTelemetry};

/// A connection's transport, unified across listener kinds.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn raw_fd(&self) -> RawFd {
        match self {
            Self::Tcp(s) => s.as_raw_fd(),
            Self::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

/// Encoded responses awaiting delivery: a flat byte buffer plus the end
/// offset of each queued response, so the response-count cap and the
/// written-frames counter survive partial writes.
#[derive(Default)]
struct OutBuf {
    bytes: Vec<u8>,
    start: usize,
    ends: VecDeque<usize>,
}

impl OutBuf {
    fn is_empty(&self) -> bool {
        self.start == self.bytes.len()
    }

    /// Queued responses not yet fully written.
    fn pending(&self) -> usize {
        self.ends.len()
    }

    fn push_response(&mut self, shared: &Shared, payload: &[u8]) {
        self.bytes
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(payload);
        self.ends.push_back(self.bytes.len());
        shared
            .counters
            .queued_responses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Writes as much as the socket accepts. `WouldBlock` leaves the
    /// remainder queued; a hard error is returned. The number of bytes
    /// written is the progress signal for the write deadline.
    fn flush(&mut self, w: &mut impl Write, shared: &Shared) -> io::Result<usize> {
        let mut progressed = 0usize;
        while self.start < self.bytes.len() {
            match w.write(&self.bytes[self.start..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.start += n;
                    progressed += n;
                    while self.ends.front().is_some_and(|&end| end <= self.start) {
                        self.ends.pop_front();
                        shared
                            .counters
                            .queued_responses
                            .fetch_sub(1, Ordering::Relaxed);
                        ServeCounters::bump(&shared.counters.frames_written);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if self.is_empty() {
            self.bytes.clear();
            self.start = 0;
        }
        Ok(progressed)
    }

    /// Gives up on undelivered responses (connection closing), keeping
    /// the queue-depth gauge honest.
    fn abandon(&mut self, shared: &Shared) {
        if !self.ends.is_empty() {
            shared
                .counters
                .queued_responses
                .fetch_sub(self.ends.len() as u64, Ordering::Relaxed);
            self.ends.clear();
        }
    }
}

/// One multiplexed connection. Owned by exactly one of: the dispatcher's
/// parked map, the job channel, or a worker.
struct Conn {
    stream: Stream,
    decoder: FrameDecoder,
    out: OutBuf,
    /// Last moment bytes moved in either direction.
    last_progress: Instant,
    /// Stop reading; close once the out-buffer drains (EOF seen,
    /// oversized answered, or drain notice queued).
    close_after_flush: bool,
    /// A `Draining` notice has been queued.
    notified_draining: bool,
}

impl Conn {
    fn new(stream: Stream) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(),
            out: OutBuf::default(),
            last_progress: Instant::now(),
            close_after_flush: false,
            notified_draining: false,
        }
    }

    fn push_response(&mut self, shared: &Shared, response: &Response) {
        self.out.push_response(shared, &response.encode());
    }

    fn flush(&mut self, shared: &Shared) -> io::Result<()> {
        let progressed = self.out.flush(&mut self.stream, shared)?;
        if progressed > 0 {
            self.last_progress = Instant::now();
        }
        Ok(())
    }
}

struct Job {
    id: u64,
    conn: Conn,
}

struct Return {
    id: u64,
    conn: Conn,
    dead: bool,
}

/// What the dispatcher polls, parallel to its pollfd slice.
enum Token {
    Wake,
    Tcp,
    Unix,
    Conn(u64),
}

/// Closes a connection: best-effort flush of any queued notice, then
/// release the gauge and the fd.
fn close_conn(shared: &Shared, mut conn: Conn) {
    let _ = conn.flush(shared);
    conn.out.abandon(shared);
}

enum AcceptOut {
    Conn(Stream),
    WouldBlock,
    Failed,
}

fn accept_stream(
    is_tcp: bool,
    tcp: Option<&TcpListener>,
    unix: Option<&UnixListener>,
    shared: &Shared,
) -> AcceptOut {
    if shared.take_accept_fault(is_tcp) {
        return AcceptOut::Failed;
    }
    if is_tcp {
        match tcp.map(TcpListener::accept) {
            Some(Ok((stream, _))) => {
                // Same socket shaping as the thread-per-connection path:
                // Nagle off (small latency-bound responses), and
                // nonblocking because every read/write happens under the
                // readiness loop.
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    return AcceptOut::Failed;
                }
                AcceptOut::Conn(Stream::Tcp(stream))
            }
            Some(Err(e)) if e.kind() == io::ErrorKind::WouldBlock => AcceptOut::WouldBlock,
            Some(Err(_)) => AcceptOut::Failed,
            None => AcceptOut::WouldBlock,
        }
    } else {
        match unix.map(UnixListener::accept) {
            Some(Ok((stream, _))) => {
                if stream.set_nonblocking(true).is_err() {
                    return AcceptOut::Failed;
                }
                AcceptOut::Conn(Stream::Unix(stream))
            }
            Some(Err(e)) if e.kind() == io::ErrorKind::WouldBlock => AcceptOut::WouldBlock,
            Some(Err(_)) => AcceptOut::Failed,
            None => AcceptOut::WouldBlock,
        }
    }
}

/// The dispatcher: owns the poll set, accepts connections, enforces
/// deadlines, routes ready connections to workers, and runs the drain
/// protocol. Returns the final telemetry snapshot.
pub(crate) fn pool_loop(
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    wake_rx: UnixStream,
    config: ServeConfig,
    shared: Arc<Shared>,
) -> ServeTelemetry {
    if let Some(listener) = &tcp {
        let _ = listener.set_nonblocking(true);
    }
    if let Some(listener) = &unix {
        let _ = listener.set_nonblocking(true);
    }
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (ret_tx, ret_rx) = mpsc::channel::<Return>();
    let job_rx = Arc::new(parking_lot::Mutex::new(job_rx));
    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|_| {
            let jobs = Arc::clone(&job_rx);
            let ret = ret_tx.clone();
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&jobs, &ret, &shared))
        })
        .collect();
    drop(ret_tx);

    let mut tcp = tcp;
    let mut unix = unix;
    let mut tcp_gate = BackoffGate::new();
    let mut unix_gate = BackoffGate::new();
    let mut parked: HashMap<u64, Conn> = HashMap::new();
    let mut in_flight = 0usize;
    let mut next_id = 1u64;
    let mut listeners_dropped = false;
    let cap = config.response_queue.max(1);
    let tick = config
        .read_timeout
        .clamp(Duration::from_millis(1), Duration::from_millis(100));
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tokens: Vec<Token> = Vec::new();

    let dispatch = |job_tx: &mpsc::Sender<Job>, in_flight: &mut usize, id: u64, conn: Conn| {
        *in_flight += 1;
        shared
            .counters
            .dispatch_depth
            .fetch_add(1, Ordering::Relaxed);
        if let Err(mpsc::SendError(job)) = job_tx.send(Job { id, conn }) {
            // Workers only exit after this loop drops the sender, so
            // this is unreachable; degrade to a clean close anyway.
            *in_flight -= 1;
            shared
                .counters
                .dispatch_depth
                .fetch_sub(1, Ordering::Relaxed);
            close_conn(&shared, job.conn);
        }
    };

    // The O(parked) deadline sweep runs on its own cadence, not every
    // pass — at 512 connections a per-wake sweep dominates the loop.
    let sweep_every = (config.read_timeout / 4).max(Duration::from_millis(1));
    let mut last_sweep = Instant::now();

    loop {
        // Re-arm wake coalescing *before* consuming returns: a worker
        // finishing after this point either lands in try_recv below or
        // writes the pipe and wakes the next poll. Either way no return
        // is stranded.
        shared.begin_dispatch_pass();

        // 1. Take back connections the workers finished with.
        while let Ok(ret) = ret_rx.try_recv() {
            in_flight -= 1;
            shared
                .counters
                .dispatch_depth
                .fetch_sub(1, Ordering::Relaxed);
            let conn = ret.conn;
            if ret.dead || (conn.close_after_flush && conn.out.is_empty()) {
                close_conn(&shared, conn);
                continue;
            }
            if shared.draining() && shared.past_drain_deadline() {
                let mut conn = conn;
                conn.push_response(&shared, &Response::Draining);
                close_conn(&shared, conn);
                continue;
            }
            // A complete frame is already buffered and there is response
            // budget: the connection has runnable work regardless of
            // socket readiness, so hand it straight back.
            if !conn.close_after_flush && conn.decoder.frame_ready() && conn.out.pending() < cap {
                dispatch(&job_tx, &mut in_flight, ret.id, conn);
                continue;
            }
            parked.insert(ret.id, conn);
        }

        // 2. Drain protocol.
        let draining = shared.draining();
        if draining {
            shared.arm_drain_deadline(config.drain_deadline);
            if !listeners_dropped {
                // Dropping the listeners closes their fds, so new
                // connects are refused from this point on.
                tcp = None;
                unix = None;
                listeners_dropped = true;
            }
            if shared.past_drain_deadline() {
                for (_, mut conn) in parked.drain() {
                    conn.push_response(&shared, &Response::Draining);
                    close_conn(&shared, conn);
                }
            }
            if parked.is_empty() && in_flight == 0 {
                break;
            }
        }

        // 3. Deadline sweep over parked connections, at most every
        //    quarter read-deadline — deadlines have read-timeout
        //    granularity, so sweeping finer than that buys nothing.
        let now = Instant::now();
        if now.duration_since(last_sweep) >= sweep_every {
            last_sweep = now;
            let mut expired: Vec<u64> = Vec::new();
            for (&id, conn) in &parked {
                let silent = now.duration_since(conn.last_progress);
                let mid_frame = conn.decoder.mid_frame() && !conn.decoder.frame_ready();
                if mid_frame && silent >= shared.read_timeout {
                    ServeCounters::bump(&shared.counters.stalled_closes);
                    expired.push(id);
                } else if !conn.out.is_empty() && silent >= shared.write_timeout {
                    // A reader that has not drained a byte in a full
                    // write deadline is gone; its sessions survive.
                    ServeCounters::bump(&shared.counters.stalled_closes);
                    expired.push(id);
                } else if !conn.decoder.mid_frame()
                    && !conn.close_after_flush
                    && silent >= shared.idle_timeout
                {
                    ServeCounters::bump(&shared.counters.idle_closes);
                    expired.push(id);
                }
            }
            for id in expired {
                if let Some(conn) = parked.remove(&id) {
                    close_conn(&shared, conn);
                }
            }
        }

        // 4. Build the poll set: wake pipe, gated listeners, parked fds.
        fds.clear();
        tokens.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        tokens.push(Token::Wake);
        let now = Instant::now();
        let mut timeout = tick;
        if !draining {
            if let Some(listener) = &tcp {
                if tcp_gate.ready(now) {
                    fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                    tokens.push(Token::Tcp);
                } else if let Some(delay) = tcp_gate.time_to_retry(now) {
                    timeout = timeout.min(delay.max(Duration::from_millis(1)));
                }
            }
            if let Some(listener) = &unix {
                if unix_gate.ready(now) {
                    fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                    tokens.push(Token::Unix);
                } else if let Some(delay) = unix_gate.time_to_retry(now) {
                    timeout = timeout.min(delay.max(Duration::from_millis(1)));
                }
            }
        }
        for (&id, conn) in &parked {
            let mut events = 0i16;
            if !conn.close_after_flush && conn.out.pending() < cap {
                events |= POLLIN;
            }
            if !conn.out.is_empty() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(conn.stream.raw_fd(), events));
                tokens.push(Token::Conn(id));
            }
        }
        let _ = poll::poll(&mut fds, timeout);

        // 5. Act on readiness.
        for (slot, token) in fds.iter().zip(&tokens) {
            match token {
                Token::Wake => {
                    if slot.ready() {
                        let mut sink = [0u8; 64];
                        let mut rx = &wake_rx;
                        loop {
                            match rx.read(&mut sink) {
                                Ok(0) => break,
                                Ok(_) => {}
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                Err(_) => break,
                            }
                        }
                    }
                }
                Token::Tcp | Token::Unix => {
                    let is_tcp = matches!(token, Token::Tcp);
                    // A fault-injected listener is attempted even
                    // without a queued connection, so its forced
                    // failures actually fire.
                    if !slot.ready() && !shared.accept_fault_pending(is_tcp) {
                        continue;
                    }
                    let gate = if is_tcp {
                        &mut tcp_gate
                    } else {
                        &mut unix_gate
                    };
                    loop {
                        match accept_stream(is_tcp, tcp.as_ref(), unix.as_ref(), &shared) {
                            AcceptOut::Conn(stream) => {
                                gate.success();
                                ServeCounters::bump(&shared.counters.connections);
                                let id = next_id;
                                next_id += 1;
                                // Straight to a worker: the client's
                                // first frame is usually already in
                                // flight, and an empty read just parks
                                // the connection.
                                dispatch(&job_tx, &mut in_flight, id, Conn::new(stream));
                            }
                            AcceptOut::WouldBlock => break,
                            AcceptOut::Failed => {
                                let counter = if is_tcp {
                                    &shared.counters.accept_failures_tcp
                                } else {
                                    &shared.counters.accept_failures_unix
                                };
                                ServeCounters::bump(counter);
                                gate.failure(Instant::now());
                                break;
                            }
                        }
                    }
                }
                Token::Conn(id) => {
                    if slot.ready() {
                        if let Some(conn) = parked.remove(id) {
                            dispatch(&job_tx, &mut in_flight, *id, conn);
                        }
                    }
                }
            }
        }

        // 6. Drain notices for parked connections that have gone quiet
        //    (one read-deadline of grace lets an active client's
        //    in-flight request finish first).
        if draining {
            let now = Instant::now();
            let mut flushed_out: Vec<u64> = Vec::new();
            for (&id, conn) in parked.iter_mut() {
                if conn.notified_draining
                    || now.duration_since(conn.last_progress) < shared.read_timeout
                {
                    continue;
                }
                conn.notified_draining = true;
                conn.close_after_flush = true;
                conn.push_response(&shared, &Response::Draining);
                let _ = conn.flush(&shared);
                if conn.out.is_empty() {
                    flushed_out.push(id);
                }
            }
            for id in flushed_out {
                if let Some(conn) = parked.remove(&id) {
                    close_conn(&shared, conn);
                }
            }
        }
    }

    // Shutdown: closing the job channel ends the workers.
    drop(job_tx);
    for worker in workers {
        let _ = worker.join();
    }
    if let Some(path) = &config.unix {
        let _ = std::fs::remove_file(path);
    }
    shared.freeze(true)
}

/// A worker: takes one connection at a time off the shared queue, runs a
/// turn, hands it back, and nudges the dispatcher. Per-worker scratch
/// buffers (events + read chunk) are reused across every turn. A panic
/// in a turn (an internal bug) costs that connection, never the pool.
fn worker_loop(
    jobs: &parking_lot::Mutex<mpsc::Receiver<Job>>,
    ret: &mpsc::Sender<Return>,
    shared: &Shared,
) {
    let mut scratch: Vec<BranchEvent> = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    loop {
        // Hold the receiver lock only for the blocking take, never
        // during a turn.
        let job = {
            let rx = jobs.lock();
            rx.recv()
        };
        let Ok(mut job) = job else {
            return;
        };
        let dead = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_turn(&mut job.conn, shared, &mut scratch, &mut chunk)
        }))
        .unwrap_or(true);
        if ret
            .send(Return {
                id: job.id,
                conn: job.conn,
                dead,
            })
            .is_err()
        {
            return;
        }
        shared.wake();
    }
}

/// One turn on a connection. Returns `true` when the connection is dead
/// (transport error, truncation, or fully flushed close).
fn serve_turn(
    conn: &mut Conn,
    shared: &Shared,
    scratch: &mut Vec<BranchEvent>,
    chunk: &mut [u8],
) -> bool {
    let cap = shared.response_queue.max(1);
    // Flush first: delivered responses free budget for buffered frames.
    if conn.flush(shared).is_err() {
        return true;
    }
    if process_buffered(conn, shared, scratch, cap) {
        return true;
    }
    let mut peer_eof = false;
    while !conn.close_after_flush && conn.out.pending() < cap {
        match conn.stream.read(chunk) {
            Ok(0) => {
                peer_eof = true;
                break;
            }
            Ok(n) => {
                conn.last_progress = Instant::now();
                conn.decoder.extend(&chunk[..n]);
                if process_buffered(conn, shared, scratch, cap) {
                    return true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => return true,
        }
    }
    if peer_eof {
        // The peer is gone, so the response cap no longer means
        // anything: execute whatever complete frames it left behind
        // (their responses flush below, best-effort), then classify the
        // close.
        if process_buffered(conn, shared, scratch, usize::MAX) {
            return true;
        }
        if conn.decoder.mid_frame() && !conn.decoder.frame_ready() {
            ServeCounters::bump(&shared.counters.truncated_closes);
            return true;
        }
        conn.close_after_flush = true;
    }
    if conn.flush(shared).is_err() {
        return true;
    }
    conn.close_after_flush && conn.out.is_empty()
}

/// Decodes and executes every complete buffered frame while the
/// connection has response budget. Returns `true` when the connection is
/// dead. An oversized prefix is answered and flips `close_after_flush` —
/// the stream offset is unrecoverable.
fn process_buffered(
    conn: &mut Conn,
    shared: &Shared,
    scratch: &mut Vec<BranchEvent>,
    cap: usize,
) -> bool {
    let Conn {
        ref mut decoder,
        ref mut out,
        ref mut close_after_flush,
        ..
    } = *conn;
    loop {
        if *close_after_flush || out.pending() >= cap {
            return false;
        }
        match decoder.next_frame() {
            Ok(None) => return false,
            Ok(Some(payload)) => {
                ServeCounters::bump(&shared.counters.frames_read);
                match protocol::decode_request_into(payload, scratch) {
                    Ok(request) => {
                        if let Some(response) = execute(shared, request, scratch) {
                            out.push_response(shared, &response.encode());
                        }
                    }
                    Err(DecodeFailure {
                        session,
                        code,
                        error,
                    }) => {
                        // Frame-aligned but malformed: answer and keep
                        // the connection.
                        ServeCounters::bump(&shared.counters.malformed_frames);
                        out.push_response(
                            shared,
                            &Response::Error {
                                session,
                                code,
                                detail: error.to_string(),
                            }
                            .encode(),
                        );
                    }
                }
            }
            Err(FrameError::Oversized { declared }) => {
                ServeCounters::bump(&shared.counters.oversized_frames);
                out.push_response(
                    shared,
                    &Response::Error {
                        session: 0,
                        code: ErrorCode::Oversized,
                        detail: format!("declared frame length {declared}"),
                    }
                    .encode(),
                );
                *close_after_flush = true;
                return false;
            }
            // The decoder's only error is Oversized; treat anything new
            // as fatal for this connection rather than guessing.
            Err(_) => return true,
        }
    }
}
