//! `tpcp-serve` — the online classification service and its chaos driver.
//!
//! Serve mode (the default) binds TCP and optionally a Unix socket, then
//! runs until SIGINT/SIGTERM, at which point it drains gracefully: stops
//! accepting, lets in-flight sessions finish against the drain deadline,
//! and writes a final telemetry snapshot before exiting 0.
//!
//! ```text
//! tpcp-serve [--tcp ADDR] [--unix PATH] [--telemetry PATH]
//!            [--workers N] [--shards N] [--telemetry-interval-ms N]
//!            [--max-live N] [--max-parked N]
//!            [--read-timeout-ms N] [--idle-timeout-ms N]
//!            [--drain-deadline-ms N]
//! ```
//!
//! `--workers 0` selects the thread-per-connection baseline; any other
//! value serves every connection from that many pool workers behind a
//! readiness loop. `--telemetry-interval-ms` (with `--telemetry PATH`)
//! atomically rewrites the snapshot file on that period while running,
//! instead of only at drain.
//!
//! Drive mode runs the deterministic client fleet against a server,
//! optionally with transport chaos (requires the `fault-inject`
//! feature):
//!
//! ```text
//! tpcp-serve drive --addr HOST:PORT [--sessions N] [--intervals N]
//!                  [--chaos SEED] [--fleet]
//! ```
//!
//! Drive exits non-zero if any *unfaulted* session fails its script.
//! `--fleet` switches to the pipelined fleet driver: all sessions are
//! pumped by a fixed set of client threads instead of one thread per
//! session, and the run prints an order-insensitive digest of every
//! classification — the same digest for the same session count and
//! interval count, whatever serve mode or thread schedule produced it.
//! `--fleet` and `--chaos` are mutually exclusive.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tpcp_serve::client::{drive_sessions, no_faults, SessionScript};
use tpcp_serve::server::{ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.first().map(String::as_str) == Some("drive") {
        drive_main(&args[1..])
    } else {
        serve_main(&args)
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("tpcp-serve: {message}");
            ExitCode::from(2)
        }
    }
}

fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, String> {
    let value = value.ok_or_else(|| format!("{flag} requires a value"))?;
    value
        .parse::<u64>()
        .map_err(|_| format!("{flag} expects an unsigned integer, got {value:?}"))
}

fn serve_main(args: &[String]) -> Result<ExitCode, String> {
    let mut config = ServeConfig::default();
    let mut telemetry_path: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tcp" => {
                let addr = it.next().ok_or("--tcp requires a value")?;
                config.tcp = Some(addr.clone());
            }
            "--unix" => {
                let path = it.next().ok_or("--unix requires a value")?;
                config.unix = Some(PathBuf::from(path));
            }
            "--telemetry" => {
                let path = it.next().ok_or("--telemetry requires a value")?;
                telemetry_path = Some(PathBuf::from(path));
            }
            "--workers" => config.workers = parse_u64(flag, it.next())? as usize,
            "--shards" => {
                let shards = parse_u64(flag, it.next())? as usize;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
                config.shards = shards;
            }
            "--telemetry-interval-ms" => {
                config.telemetry_interval =
                    Some(Duration::from_millis(parse_u64(flag, it.next())?.max(1)));
            }
            "--max-live" => config.max_live = parse_u64(flag, it.next())? as usize,
            "--max-parked" => config.max_parked = parse_u64(flag, it.next())? as usize,
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(parse_u64(flag, it.next())?);
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(parse_u64(flag, it.next())?);
            }
            "--drain-deadline-ms" => {
                config.drain_deadline = Duration::from_millis(parse_u64(flag, it.next())?);
            }
            other => return Err(format!("unknown flag {other:?} (serve mode)")),
        }
    }

    // Periodic snapshots (if an interval is set) go to the same file the
    // final drain snapshot does, rewritten atomically.
    config.telemetry_path = telemetry_path.clone();

    // Catch SIGINT/SIGTERM so the drain path below runs instead of the
    // default immediate termination.
    tpcp_experiments::shutdown::install();

    let handle = Server::spawn(config).map_err(|e| format!("failed to start server: {e}"))?;
    if let Some(addr) = handle.tcp_addr() {
        eprintln!("# tpcp-serve listening on tcp {addr}");
    }
    if let Some(path) = handle.unix_path() {
        eprintln!("# tpcp-serve listening on unix {}", path.display());
    }

    while !tpcp_experiments::shutdown::requested() && handle.is_running() {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("# tpcp-serve draining: no new connections, flushing in-flight sessions");
    let telemetry = handle.join();
    let json = telemetry.to_json();
    match telemetry_path {
        Some(path) => {
            std::fs::write(&path, &json)
                .map_err(|e| format!("failed to write telemetry to {}: {e}", path.display()))?;
            eprintln!("# final telemetry written to {}", path.display());
        }
        None => print!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn drive_main(args: &[String]) -> Result<ExitCode, String> {
    let mut addr: Option<SocketAddr> = None;
    let mut sessions: u64 = 16;
    let mut intervals: u64 = 24;
    let mut chaos: Option<u64> = None;
    let mut fleet = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                let value = it.next().ok_or("--addr requires a value")?;
                addr = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--addr expects HOST:PORT, got {value:?}"))?,
                );
            }
            "--sessions" => sessions = parse_u64(flag, it.next())?,
            "--intervals" => intervals = parse_u64(flag, it.next())?,
            "--chaos" => chaos = Some(parse_u64(flag, it.next())?),
            "--fleet" => fleet = true,
            other => return Err(format!("unknown flag {other:?} (drive mode)")),
        }
    }
    let addr = addr.ok_or("drive mode requires --addr HOST:PORT")?;
    if fleet {
        if chaos.is_some() {
            return Err("--fleet and --chaos are mutually exclusive".into());
        }
        let script = tpcp_serve::FleetScript::new(sessions, intervals);
        let run =
            tpcp_serve::drive_fleet(addr, &script).map_err(|e| format!("fleet failed: {e}"))?;
        println!(
            "# fleet: {} connections x {} intervals, digest {:016x}",
            run.connections, intervals, run.checksum
        );
        return Ok(ExitCode::SUCCESS);
    }
    let scripts: Vec<SessionScript> = (0..sessions)
        .map(|s| SessionScript::for_session(s + 1, intervals))
        .collect();

    // A stall fault must out-wait the server's per-read deadline; the
    // default config ticks every 100ms.
    let stall_hold = Duration::from_millis(400);

    let results = match chaos {
        None => drive_sessions(addr, &scripts, &no_faults, stall_hold),
        Some(seed) => run_with_chaos(addr, &scripts, seed, stall_hold)?,
    };

    let mut completed = 0u64;
    let mut cut = 0u64;
    let mut failed = 0u64;
    for (script, result) in scripts.iter().zip(&results) {
        match result {
            Ok(t) if t.completed => completed += 1,
            Ok(_) => cut += 1,
            Err(e) => {
                failed += 1;
                eprintln!("# session {} failed: {e}", script.session);
            }
        }
    }
    println!("# drive: {completed} completed, {cut} cut by faults, {failed} failed");
    if failed > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(feature = "fault-inject")]
fn run_with_chaos(
    addr: SocketAddr,
    scripts: &[SessionScript],
    seed: u64,
    stall_hold: Duration,
) -> Result<Vec<std::io::Result<tpcp_serve::Transcript>>, String> {
    use tpcp_experiments::fault::FaultPlan;
    // Fault a third of the fleet so a chaos run shows both casualties
    // and — the point of the exercise — unaffected survivors.
    let labels: Vec<String> = scripts
        .iter()
        .filter(|s| s.session % 3 == 0)
        .map(SessionScript::label)
        .collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let frames_per_session = scripts
        .iter()
        .map(|s| 2 + s.intervals * 2 + s.intervals / s.query_every.max(1) * 3)
        .max()
        .unwrap_or(8);
    let plan = FaultPlan::randomized_transport(seed, &label_refs, frames_per_session);
    let injector = plan.build();
    let oracle = tpcp_serve::client::injector_oracle(&injector);
    Ok(drive_sessions(addr, scripts, &oracle, stall_hold))
}

#[cfg(not(feature = "fault-inject"))]
fn run_with_chaos(
    _addr: SocketAddr,
    _scripts: &[SessionScript],
    _seed: u64,
    _stall_hold: Duration,
) -> Result<Vec<std::io::Result<tpcp_serve::Transcript>>, String> {
    Err("--chaos requires the fault-inject feature (rebuild with --features fault-inject)".into())
}
