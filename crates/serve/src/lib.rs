//! `tpcp-serve`: a robust online phase-classification service.
//!
//! The crate wraps the workspace's [`PhaseClassifier`](tpcp_core) and
//! predictors in a long-running server that speaks length-prefixed
//! frames of the varint codec over TCP and Unix sockets. Each client
//! session owns its own classifier (any extractor back-end) and can ask
//! for the current phase, the predicted next phase, and the predicted
//! run-length class, with a confidence flag on each answer.
//!
//! Robustness is the design driver, not an afterthought:
//!
//! - **Deadlines** — every connection has a read deadline and an idle
//!   timeout; a stalled or silent peer is disconnected without touching
//!   its siblings, and the accept loop retries with exponential backoff.
//! - **Backpressure** — responses flow through a bounded per-connection
//!   queue, so one slow reader blocks only its own session.
//! - **Eviction** — session state lives in a bounded LRU; under
//!   pressure the coldest session is parked as a `TPCPSNP1` snapshot and
//!   restored bit-identically on its next frame.
//! - **Malformed-frame tolerance** — every decode error maps to a
//!   structured error response; the connection survives everything
//!   except an unrecoverable stream offset (oversized frame).
//! - **Graceful drain** — on request (SIGTERM in the binary) the server
//!   stops accepting, lets in-flight sessions finish against a deadline,
//!   and freezes a final [`ServeTelemetry`] snapshot.
//!
//! The [`client`] module doubles as the chaos harness: deterministic
//! per-session scripts plus client-side transport faults (truncated
//! frames, garbage prefixes, mid-frame stalls, disconnects) from the
//! `fault-inject` `FaultPlan`,
//! used to pin survivor sessions bit-identical to a fault-free run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod session;
pub mod telemetry;

pub use client::{drive_sessions, run_session, SessionScript, Transcript, TransportAction};
pub use protocol::{
    DecodeFailure, ErrorCode, QueryKind, Request, Response, WireEvent, WireExtractor,
};
pub use server::{ServeConfig, Server, ServerHandle};
pub use session::{Session, SessionStore, StoreCounters, StoreError};
pub use telemetry::{ServeCounters, ServeTelemetry};
