//! `tpcp-serve`: a robust online phase-classification service.
//!
//! The crate wraps the workspace's [`PhaseClassifier`](tpcp_core) and
//! predictors in a long-running server that speaks length-prefixed
//! frames of the varint codec over TCP and Unix sockets. Each client
//! session owns its own classifier (any extractor back-end) and can ask
//! for the current phase, the predicted next phase, and the predicted
//! run-length class, with a confidence flag on each answer.
//!
//! Robustness is the design driver, not an afterthought:
//!
//! - **Scalability** — by default connections are multiplexed through a
//!   `poll(2)` readiness loop onto a small worker pool ([`server`] with
//!   `workers > 0`), so a fleet of N clients costs N fds rather than N
//!   threads; `workers = 0` keeps the thread-per-connection path as a
//!   baseline.
//! - **Sharding** — session state lives in a [`ShardedStore`]: the
//!   session id hashes to one of `shards` independently locked
//!   [`SessionStore`]s, each a bounded LRU with its own parked tier, so
//!   unrelated sessions never contend on one mutex.
//! - **Deadlines** — every connection has a read deadline and an idle
//!   timeout; a stalled or silent peer is disconnected without touching
//!   its siblings, and each listener retries failed accepts behind its
//!   own exponential-backoff gate (a failing TCP listener never stalls
//!   the Unix listener, or vice versa).
//! - **Backpressure** — responses flow through a bounded per-connection
//!   queue, so one slow reader blocks only its own session.
//! - **Eviction** — under pressure the coldest session in a shard is
//!   parked as a `TPCPSNP1` snapshot and restored bit-identically on its
//!   next frame.
//! - **Malformed-frame tolerance** — every decode error maps to a
//!   structured error response, and an `EndInterval` carrying a
//!   non-finite or negative CPI is rejected without touching session
//!   state; the connection survives everything except an unrecoverable
//!   stream offset (oversized frame).
//! - **Observability** — hot paths bump [`ServeCounters`]; snapshots
//!   freeze periodically while running (when a telemetry interval is
//!   configured) and finally at drain, including per-shard occupancy.
//! - **Graceful drain** — on request (SIGTERM in the binary) the server
//!   stops accepting, lets in-flight sessions finish against a deadline,
//!   and freezes a final [`ServeTelemetry`] snapshot.
//!
//! The [`client`] module doubles as the chaos harness: deterministic
//! per-session scripts plus client-side transport faults (truncated
//! frames, garbage prefixes, mid-frame stalls, disconnects) from the
//! `fault-inject` `FaultPlan`,
//! used to pin survivor sessions bit-identical to a fault-free run.

#![deny(unsafe_code)] // one audited FFI call in `poll`; everything else forbidden
#![warn(missing_docs)]

pub mod client;
pub mod poll;
mod pool;
pub mod protocol;
pub mod server;
pub mod session;
pub mod telemetry;

pub use client::{
    drive_fleet, drive_sessions, run_session, FleetRun, FleetScript, SessionScript, Transcript,
    TransportAction,
};
pub use protocol::{
    decode_request_into, DecodeFailure, ErrorCode, FastRequest, QueryKind, Request, Response,
    WireEvent, WireExtractor,
};
pub use server::{AcceptFaults, ServeConfig, Server, ServerHandle};
pub use session::{Session, SessionStore, ShardedStore, StoreCounters, StoreError};
pub use telemetry::{ServeCounters, ServeTelemetry};
