//! Serve-loop telemetry: atomic counters bumped on the hot paths, frozen
//! into JSON snapshots — periodically while running (when
//! `--telemetry-interval` is set) and finally at drain.
//!
//! The JSON is hand-rolled (the workspace's serde is a derive-marker
//! stand-in) with a fixed key order, so two drains of identical runs
//! produce byte-identical documents modulo the measured values.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::session::StoreCounters;

/// Shared counters the server threads bump while running.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections accepted (TCP + Unix).
    pub connections: AtomicU64,
    /// Client frames successfully read.
    pub frames_read: AtomicU64,
    /// Server frames written.
    pub frames_written: AtomicU64,
    /// Frames whose payload failed to decode (answered with an error
    /// frame, connection kept).
    pub malformed_frames: AtomicU64,
    /// Frames whose declared length exceeded the limit (answered, then
    /// the connection was closed — the stream offset is unrecoverable).
    pub oversized_frames: AtomicU64,
    /// `EndInterval` frames rejected for a NaN/negative/infinite CPI
    /// (answered with an error frame; session state untouched).
    pub invalid_cpi: AtomicU64,
    /// Connections closed for idling at a frame boundary.
    pub idle_closes: AtomicU64,
    /// Connections closed for stalling mid-frame.
    pub stalled_closes: AtomicU64,
    /// Connections that ended mid-frame (peer vanished).
    pub truncated_closes: AtomicU64,
    /// Accept attempts that failed on the TCP listener (each one closes
    /// only that listener's backoff gate).
    pub accept_failures_tcp: AtomicU64,
    /// Accept attempts that failed on the Unix listener.
    pub accept_failures_unix: AtomicU64,
    /// Intervals classified across all sessions.
    pub intervals: AtomicU64,
    /// Queries answered.
    pub queries: AtomicU64,
    /// Gauge: responses currently queued (encoded, not yet written)
    /// across all connections.
    pub queued_responses: AtomicU64,
    /// Gauge: connections handed to the worker pool and not yet
    /// returned (queued for a worker or being served).
    pub dispatch_depth: AtomicU64,
}

impl ServeCounters {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A frozen snapshot of the serve loop's counters, written periodically
/// while running (`drained: false`) and finally on drain
/// (`drained: true`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeTelemetry {
    /// Connections accepted.
    pub connections: u64,
    /// Client frames read.
    pub frames_read: u64,
    /// Server frames written.
    pub frames_written: u64,
    /// Malformed frames tolerated.
    pub malformed_frames: u64,
    /// Oversized frames rejected.
    pub oversized_frames: u64,
    /// `EndInterval` frames rejected for an invalid CPI.
    pub invalid_cpi: u64,
    /// Idle-deadline closes.
    pub idle_closes: u64,
    /// Mid-frame stall closes.
    pub stalled_closes: u64,
    /// Mid-frame EOF closes.
    pub truncated_closes: u64,
    /// Failed accepts on the TCP listener.
    pub accept_failures_tcp: u64,
    /// Failed accepts on the Unix listener.
    pub accept_failures_unix: u64,
    /// Intervals classified.
    pub intervals: u64,
    /// Queries answered.
    pub queries: u64,
    /// Responses queued and not yet written, at snapshot time.
    pub queued_responses: u64,
    /// Connections at (or queued for) a pool worker, at snapshot time.
    pub dispatch_depth: u64,
    /// Worker threads serving connections (0 = thread-per-connection).
    pub workers: u64,
    /// Session-store counters summed across shards.
    pub store: StoreCounters,
    /// `(live, parked)` occupancy of each store shard, in shard order.
    pub shards: Vec<(u64, u64)>,
    /// Whether this snapshot was frozen by a graceful drain (periodic
    /// snapshots of a running server record `false`).
    pub drained: bool,
}

impl ServeTelemetry {
    /// Freezes the shared counters plus the store's counters and
    /// per-shard occupancy.
    pub fn freeze(
        counters: &ServeCounters,
        store: StoreCounters,
        occupancy: &[(usize, usize)],
        workers: u64,
        drained: bool,
    ) -> Self {
        Self {
            connections: counters.connections.load(Ordering::Relaxed),
            frames_read: counters.frames_read.load(Ordering::Relaxed),
            frames_written: counters.frames_written.load(Ordering::Relaxed),
            malformed_frames: counters.malformed_frames.load(Ordering::Relaxed),
            oversized_frames: counters.oversized_frames.load(Ordering::Relaxed),
            invalid_cpi: counters.invalid_cpi.load(Ordering::Relaxed),
            idle_closes: counters.idle_closes.load(Ordering::Relaxed),
            stalled_closes: counters.stalled_closes.load(Ordering::Relaxed),
            truncated_closes: counters.truncated_closes.load(Ordering::Relaxed),
            accept_failures_tcp: counters.accept_failures_tcp.load(Ordering::Relaxed),
            accept_failures_unix: counters.accept_failures_unix.load(Ordering::Relaxed),
            intervals: counters.intervals.load(Ordering::Relaxed),
            queries: counters.queries.load(Ordering::Relaxed),
            queued_responses: counters.queued_responses.load(Ordering::Relaxed),
            dispatch_depth: counters.dispatch_depth.load(Ordering::Relaxed),
            workers,
            store,
            shards: occupancy
                .iter()
                .map(|&(live, parked)| (live as u64, parked as u64))
                .collect(),
            drained,
        }
    }

    /// The snapshot as a JSON document (fixed key order, trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1536);
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"tpcp-serve-telemetry-v2\",");
        let _ = writeln!(out, "  \"drained\": {},", self.drained);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"connections\": {},", self.connections);
        let _ = writeln!(out, "  \"frames_read\": {},", self.frames_read);
        let _ = writeln!(out, "  \"frames_written\": {},", self.frames_written);
        let _ = writeln!(out, "  \"malformed_frames\": {},", self.malformed_frames);
        let _ = writeln!(out, "  \"oversized_frames\": {},", self.oversized_frames);
        let _ = writeln!(out, "  \"invalid_cpi\": {},", self.invalid_cpi);
        let _ = writeln!(out, "  \"idle_closes\": {},", self.idle_closes);
        let _ = writeln!(out, "  \"stalled_closes\": {},", self.stalled_closes);
        let _ = writeln!(out, "  \"truncated_closes\": {},", self.truncated_closes);
        let _ = writeln!(out, "  \"accept_failures\": {{");
        let _ = writeln!(out, "    \"tcp\": {},", self.accept_failures_tcp);
        let _ = writeln!(out, "    \"unix\": {}", self.accept_failures_unix);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"intervals\": {},", self.intervals);
        let _ = writeln!(out, "  \"queries\": {},", self.queries);
        let _ = writeln!(out, "  \"queued_responses\": {},", self.queued_responses);
        let _ = writeln!(out, "  \"dispatch_depth\": {},", self.dispatch_depth);
        let _ = writeln!(out, "  \"sessions\": {{");
        let _ = writeln!(out, "    \"created\": {},", self.store.created);
        let _ = writeln!(out, "    \"evictions\": {},", self.store.evictions);
        let _ = writeln!(out, "    \"restores\": {},", self.store.restores);
        let _ = writeln!(out, "    \"parked_drops\": {},", self.store.parked_drops);
        let _ = writeln!(out, "    \"closed\": {}", self.store.closed);
        let _ = writeln!(out, "  }},");
        let _ = write!(out, "  \"shards\": [");
        for (i, (live, parked)) in self.shards.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let _ = write!(out, "{{\"live\": {live}, \"parked\": {parked}}}");
        }
        let _ = writeln!(out, "]");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_fixed_schema_and_every_counter() {
        let counters = ServeCounters::default();
        ServeCounters::bump(&counters.connections);
        ServeCounters::bump(&counters.intervals);
        ServeCounters::bump(&counters.accept_failures_tcp);
        let json = ServeTelemetry::freeze(
            &counters,
            StoreCounters::default(),
            &[(3, 1), (0, 0)],
            4,
            true,
        )
        .to_json();
        assert!(json.contains("\"schema\": \"tpcp-serve-telemetry-v2\""));
        assert!(json.contains("\"connections\": 1"));
        assert!(json.contains("\"intervals\": 1"));
        assert!(json.contains("\"drained\": true"));
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"parked_drops\": 0"));
        assert!(json.contains("\"invalid_cpi\": 0"));
        assert!(json.contains("\"tcp\": 1"));
        assert!(json.contains("{\"live\": 3, \"parked\": 1}, {\"live\": 0, \"parked\": 0}"));
        // Balanced braces: the hand-rolled document must stay parseable.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn periodic_snapshot_records_not_drained() {
        let counters = ServeCounters::default();
        let json =
            ServeTelemetry::freeze(&counters, StoreCounters::default(), &[], 8, false).to_json();
        assert!(json.contains("\"drained\": false"));
        assert!(json.contains("\"shards\": []"));
    }
}
