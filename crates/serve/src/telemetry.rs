//! Serve-loop telemetry: atomic counters bumped on the hot paths, frozen
//! into a JSON snapshot at drain time.
//!
//! The JSON is hand-rolled (the workspace's serde is a derive-marker
//! stand-in) with a fixed key order, so two drains of identical runs
//! produce byte-identical documents modulo the measured values.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::session::StoreCounters;

/// Shared counters the server threads bump while running.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections accepted (TCP + Unix).
    pub connections: AtomicU64,
    /// Client frames successfully read.
    pub frames_read: AtomicU64,
    /// Server frames written.
    pub frames_written: AtomicU64,
    /// Frames whose payload failed to decode (answered with an error
    /// frame, connection kept).
    pub malformed_frames: AtomicU64,
    /// Frames whose declared length exceeded the limit (answered, then
    /// the connection was closed — the stream offset is unrecoverable).
    pub oversized_frames: AtomicU64,
    /// Connections closed for idling at a frame boundary.
    pub idle_closes: AtomicU64,
    /// Connections closed for stalling mid-frame.
    pub stalled_closes: AtomicU64,
    /// Connections that ended mid-frame (peer vanished).
    pub truncated_closes: AtomicU64,
    /// Intervals classified across all sessions.
    pub intervals: AtomicU64,
    /// Queries answered.
    pub queries: AtomicU64,
}

impl ServeCounters {
    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A frozen snapshot of the serve loop's counters, written as the final
/// telemetry document on drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeTelemetry {
    /// Connections accepted.
    pub connections: u64,
    /// Client frames read.
    pub frames_read: u64,
    /// Server frames written.
    pub frames_written: u64,
    /// Malformed frames tolerated.
    pub malformed_frames: u64,
    /// Oversized frames rejected.
    pub oversized_frames: u64,
    /// Idle-deadline closes.
    pub idle_closes: u64,
    /// Mid-frame stall closes.
    pub stalled_closes: u64,
    /// Mid-frame EOF closes.
    pub truncated_closes: u64,
    /// Intervals classified.
    pub intervals: u64,
    /// Queries answered.
    pub queries: u64,
    /// Session-store counters at drain.
    pub store: StoreCounters,
    /// Whether the server drained gracefully (always true for snapshots
    /// written by the drain path; recorded for post-mortems).
    pub drained: bool,
}

impl ServeTelemetry {
    /// Freezes the shared counters plus the store's counters.
    pub fn freeze(counters: &ServeCounters, store: StoreCounters, drained: bool) -> Self {
        Self {
            connections: counters.connections.load(Ordering::Relaxed),
            frames_read: counters.frames_read.load(Ordering::Relaxed),
            frames_written: counters.frames_written.load(Ordering::Relaxed),
            malformed_frames: counters.malformed_frames.load(Ordering::Relaxed),
            oversized_frames: counters.oversized_frames.load(Ordering::Relaxed),
            idle_closes: counters.idle_closes.load(Ordering::Relaxed),
            stalled_closes: counters.stalled_closes.load(Ordering::Relaxed),
            truncated_closes: counters.truncated_closes.load(Ordering::Relaxed),
            intervals: counters.intervals.load(Ordering::Relaxed),
            queries: counters.queries.load(Ordering::Relaxed),
            store,
            drained,
        }
    }

    /// The snapshot as a JSON document (fixed key order, trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"tpcp-serve-telemetry-v1\",");
        let _ = writeln!(out, "  \"drained\": {},", self.drained);
        let _ = writeln!(out, "  \"connections\": {},", self.connections);
        let _ = writeln!(out, "  \"frames_read\": {},", self.frames_read);
        let _ = writeln!(out, "  \"frames_written\": {},", self.frames_written);
        let _ = writeln!(out, "  \"malformed_frames\": {},", self.malformed_frames);
        let _ = writeln!(out, "  \"oversized_frames\": {},", self.oversized_frames);
        let _ = writeln!(out, "  \"idle_closes\": {},", self.idle_closes);
        let _ = writeln!(out, "  \"stalled_closes\": {},", self.stalled_closes);
        let _ = writeln!(out, "  \"truncated_closes\": {},", self.truncated_closes);
        let _ = writeln!(out, "  \"intervals\": {},", self.intervals);
        let _ = writeln!(out, "  \"queries\": {},", self.queries);
        let _ = writeln!(out, "  \"sessions\": {{");
        let _ = writeln!(out, "    \"created\": {},", self.store.created);
        let _ = writeln!(out, "    \"evictions\": {},", self.store.evictions);
        let _ = writeln!(out, "    \"restores\": {},", self.store.restores);
        let _ = writeln!(out, "    \"parked_drops\": {},", self.store.parked_drops);
        let _ = writeln!(out, "    \"closed\": {}", self.store.closed);
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_fixed_schema_and_every_counter() {
        let counters = ServeCounters::default();
        ServeCounters::bump(&counters.connections);
        ServeCounters::bump(&counters.intervals);
        let json = ServeTelemetry::freeze(&counters, StoreCounters::default(), true).to_json();
        assert!(json.contains("\"schema\": \"tpcp-serve-telemetry-v1\""));
        assert!(json.contains("\"connections\": 1"));
        assert!(json.contains("\"intervals\": 1"));
        assert!(json.contains("\"drained\": true"));
        assert!(json.contains("\"parked_drops\": 0"));
        // Balanced braces: the hand-rolled document must stay parseable.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.ends_with("}\n"));
    }
}
