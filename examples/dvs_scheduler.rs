//! Phase-length-guided reconfiguration gating — the paper's motivating use
//! case for phase *length* prediction (Section 6.2): "an expensive
//! optimization or reconfiguration should only be applied if we can
//! amortize its cost over a significant amount of execution", e.g. DVS
//! transitions in real-time task scheduling.
//!
//! At every phase change we may apply an optimization that costs
//! `RECONFIG_COST` cycles up front and saves `SAVINGS_PER_INTERVAL` cycles
//! per interval while the phase lasts. Applying it to a short phase loses
//! cycles; applying it to a long phase wins big.
//!
//! Policies compared:
//! - never reconfigure,
//! - always reconfigure on every phase change,
//! - gated: reconfigure only when the RLE-2 length-class predictor says
//!   the upcoming phase will be long enough to amortize the cost.
//!
//! ```text
//! cargo run --release --example dvs_scheduler
//! ```

use tpcp::core::{ClassifierConfig, PhaseId};
use tpcp::predict::{LengthClassPredictor, RunLengthClass};
use tpcp::workloads::{BenchmarkKind, WorkloadParams};
use tpcp_experiments::{Engine, SuiteParams, TraceCache};

/// Up-front cost of the optimization, in cycles.
const RECONFIG_COST: f64 = 40_000_000.0;
/// Cycles saved per optimized interval.
const SAVINGS_PER_INTERVAL: f64 = 5_000_000.0;
/// Break-even length: RECONFIG_COST / SAVINGS_PER_INTERVAL = 8 intervals,
/// so classes Medium (16–127) and longer amortize comfortably.
fn worth_it(class: RunLengthClass) -> bool {
    class >= RunLengthClass::Medium
}

/// Collects the phase ID stream of each benchmark (classification pass):
/// one engine lane per benchmark, all replayed concurrently in a single
/// sweep and cached under `target/tpcp-traces` for re-runs.
fn phase_streams(kinds: &[BenchmarkKind]) -> Vec<Vec<PhaseId>> {
    let params = SuiteParams {
        workload: WorkloadParams {
            length_scale: 0.15,
            ..Default::default()
        },
    };
    let mut engine = Engine::new(params);
    let cells: Vec<_> = kinds
        .iter()
        .map(|&kind| engine.classified(kind, ClassifierConfig::hpca2005()))
        .collect();
    engine.run(&TraceCache::default_location());
    cells.into_iter().map(|cell| cell.take().ids).collect()
}

/// Net cycles saved by a policy over a phase stream.
/// `gate` decides, at each phase change, whether to pay for the
/// optimization given the predicted length class of the incoming phase.
fn evaluate<F>(ids: &[PhaseId], mut gate: F) -> f64
where
    F: FnMut(Option<RunLengthClass>) -> bool,
{
    let mut predictor = LengthClassPredictor::new(32, 4);
    let mut net = 0.0;
    let mut optimized = false;
    let mut prev: Option<PhaseId> = None;
    for &id in ids {
        let changed = prev.is_some_and(|p| p != id);
        if changed || prev.is_none() {
            // About to enter a new phase: consult the predictor *before*
            // it observes the change (its prediction is for this phase).
            predictor.observe(id);
            optimized = gate(predictor.current_prediction());
            if optimized {
                net -= RECONFIG_COST;
            }
        } else {
            predictor.observe(id);
        }
        if optimized {
            net += SAVINGS_PER_INTERVAL;
        }
        prev = Some(id);
    }
    net
}

fn main() {
    println!(
        "{:<9} {:>14} {:>14} {:>14}",
        "bench", "never (Mcyc)", "always (Mcyc)", "gated (Mcyc)"
    );
    let mut totals = [0.0f64; 3];
    let kinds = [
        BenchmarkKind::GzipGraphic,
        BenchmarkKind::Ammp,
        BenchmarkKind::GccScilab,
        BenchmarkKind::Mcf,
        BenchmarkKind::PerlDiffmail,
    ];
    for (kind, ids) in kinds.iter().zip(phase_streams(&kinds)) {
        let never = evaluate(&ids, |_| false);
        let always = evaluate(&ids, |_| true);
        let gated = evaluate(&ids, |pred| pred.is_some_and(worth_it));
        totals[0] += never;
        totals[1] += always;
        totals[2] += gated;
        println!(
            "{:<9} {:>14.0} {:>14.0} {:>14.0}",
            kind.label(),
            never / 1e6,
            always / 1e6,
            gated / 1e6
        );
    }
    println!(
        "{:<9} {:>14.0} {:>14.0} {:>14.0}",
        "total",
        totals[0] / 1e6,
        totals[1] / 1e6,
        totals[2] / 1e6
    );
    assert!(
        totals[2] >= totals[1],
        "length gating should beat blind reconfiguration"
    );
    println!(
        "\nlength-gated reconfiguration nets {:.0} Mcycles over always-reconfigure",
        (totals[2] - totals[1]) / 1e6
    );
}
