//! Phase-aware symbiotic job co-scheduling — the paper's Section 1
//! motivation ("phase-aware symbiotic task co-scheduling on SMT machines",
//! Snavely & Tullsen).
//!
//! Four jobs share a 2-way SMT core; each quantum (one interval) the
//! scheduler picks two jobs to co-run. Co-running two memory-bound jobs is
//! a bad pairing (they fight over the memory system); pairing a
//! memory-bound job with a compute-bound one is symbiotic. The scheduler
//! cannot see the future — but it *can* see each job's current phase ID
//! and the per-phase CPI it has learned, which is exactly the information
//! the paper's architecture provides.
//!
//! Policies compared (makespan and contention overhead; lower is better):
//! - round-robin pairing (phase-blind),
//! - phase-aware: per round, a minimum-contention matching of all
//!   runnable jobs using each job's *predicted* per-phase CPI,
//! - oracle: the same matching using the actual upcoming CPIs (an upper
//!   bound no online scheduler can beat).
//!
//! ```text
//! cargo run --release --example smt_coscheduler
//! ```

use std::collections::HashMap;

use tpcp::core::{ClassifierConfig, PhaseClassifier, PhaseId};
use tpcp::trace::RecordedTrace;
use tpcp::workloads::{BenchmarkKind, WorkloadParams};

/// One job: a pre-recorded trace, a classifier, and learned per-phase CPI.
struct Job {
    intervals: Vec<(f64, Vec<tpcp::trace::BranchEvent>)>,
    next: usize,
    classifier: PhaseClassifier,
    phase_cpi: HashMap<PhaseId, f64>,
    current_phase: PhaseId,
    finished_at: Option<u64>,
}

impl Job {
    fn new(kind: BenchmarkKind, scale: f64, seed: u64) -> Self {
        let params = WorkloadParams {
            length_scale: scale,
            seed,
            ..Default::default()
        };
        let trace = RecordedTrace::record(kind.build(&params).simulate(&params));
        let intervals = trace
            .intervals
            .into_iter()
            .map(|iv| (iv.summary.cpi(), iv.events))
            .collect();
        Self {
            intervals,
            next: 0,
            classifier: PhaseClassifier::new(ClassifierConfig::hpca2005()),
            phase_cpi: HashMap::new(),
            current_phase: PhaseId::TRANSITION,
            finished_at: None,
        }
    }

    fn runnable(&self) -> bool {
        self.next < self.intervals.len()
    }

    /// The scheduler's estimate of this job's next-interval CPI: the
    /// learned mean CPI of its current phase (last-value phase
    /// prediction), falling back to a neutral guess.
    fn predicted_cpi(&self) -> f64 {
        self.phase_cpi
            .get(&self.current_phase)
            .copied()
            .unwrap_or(4.0)
    }

    /// Executes one interval; returns its solo CPI.
    fn run_interval(&mut self) -> f64 {
        let (cpi, events) = &self.intervals[self.next];
        self.next += 1;
        for &ev in events {
            self.classifier.observe(ev);
        }
        let phase = self.classifier.end_interval(*cpi);
        self.current_phase = phase;
        let learned = self.phase_cpi.entry(phase).or_insert(*cpi);
        *learned += (*cpi - *learned) * 0.25; // EWMA per phase
        *cpi
    }
}

/// Cycles for co-running one interval of two jobs with the given solo
/// CPIs: both threads make progress, but shared memory-system contention
/// penalizes pairings of two high-CPI (memory-bound) intervals.
fn corun_cycles(cpi_a: f64, cpi_b: f64, interval_insns: f64) -> u64 {
    // Memory intensity proxy: near 0 below CPI 3 (compute bound), toward 1
    // for deeply memory-bound intervals.
    let mem = |cpi: f64| ((cpi - 3.0) / 8.0).clamp(0.0, 1.0);
    let contention = 1.0 + 1.5 * mem(cpi_a) * mem(cpi_b); // symbiosis model
                                                          // SMT overlaps the two threads: the pair takes about the longer
                                                          // thread's time, stretched by contention.
    (cpi_a.max(cpi_b) * contention * interval_insns) as u64
}

/// Runs one policy. Returns `(makespan, contention overhead)` in cycles;
/// the overhead is the part of the makespan attributable to co-run
/// interference — the quantity the pairing decision actually controls.
fn simulate(policy: &str) -> (u64, u64) {
    // Two memory-bound jobs and two compute-bound jobs: the pairing
    // decision matters every quantum.
    let mut jobs = vec![
        Job::new(BenchmarkKind::Mcf, 0.05, 1),         // memory bound
        Job::new(BenchmarkKind::Mcf, 0.05, 3),         // memory bound
        Job::new(BenchmarkKind::GzipGraphic, 0.08, 2), // compute bound
        Job::new(BenchmarkKind::GzipProgram, 0.06, 4), // compute bound
    ];
    let mut now = 0u64;
    let mut overhead = 0u64;
    let mut round = 0usize;
    while jobs.iter().any(Job::runnable) {
        let runnable: Vec<usize> = (0..jobs.len()).filter(|&i| jobs[i].runnable()).collect();
        // Choose a matching of all runnable jobs for this round.
        let pairs = match policy {
            "round-robin" => {
                // Phase-blind: rotate the pairing each round.
                let mut rotated = runnable.clone();
                rotated.rotate_left(round % runnable.len().max(1));
                rotated
                    .chunks(2)
                    .map(|c| (c[0], c.get(1).copied()))
                    .collect::<Vec<_>>()
            }
            "oracle" => {
                // Cheats: matches on the *actual* upcoming interval CPIs.
                min_cost_matching(&runnable, |i| jobs[i].intervals[jobs[i].next].0)
            }
            _ => {
                // Phase-aware: matches on the learned CPI of each job's
                // current phase (last-value phase prediction) — exactly
                // the information the paper's architecture provides.
                let jobs_ref = &jobs;
                min_cost_matching(&runnable, |i| jobs_ref[i].predicted_cpi())
            }
        };
        // Execute each matched pair for one quantum.
        for (a, b) in pairs {
            let insns = 1_000_000.0;
            let cpi_a = jobs[a].run_interval();
            let elapsed = if let Some(b) = b {
                let cpi_b = jobs[b].run_interval();
                let together = corun_cycles(cpi_a, cpi_b, insns);
                overhead += together - (cpi_a.max(cpi_b) * insns) as u64;
                together
            } else {
                (cpi_a * insns) as u64
            };
            now += elapsed;
            for i in [Some(a), b].into_iter().flatten() {
                if !jobs[i].runnable() && jobs[i].finished_at.is_none() {
                    jobs[i].finished_at = Some(now);
                }
            }
        }
        round += 1;
    }
    (now, overhead)
}

/// Minimum-total-cost perfect matching over the runnable jobs (brute
/// force; job counts are small). Odd counts leave one job running solo.
fn min_cost_matching<F: Fn(usize) -> f64 + Copy>(
    runnable: &[usize],
    predicted: F,
) -> Vec<(usize, Option<usize>)> {
    fn search<F: Fn(usize) -> f64 + Copy>(
        rest: &mut Vec<usize>,
        predicted: F,
    ) -> (f64, Vec<(usize, Option<usize>)>) {
        match rest.len() {
            0 => (0.0, Vec::new()),
            1 => {
                let a = rest[0];
                (predicted(a), vec![(a, None)])
            }
            _ => {
                let a = rest.remove(0);
                let mut best = (f64::INFINITY, Vec::new());
                for i in 0..rest.len() {
                    let b = rest.remove(i);
                    let cost = corun_cycles(predicted(a), predicted(b), 1.0) as f64;
                    let (sub_cost, mut sub) = search(rest, predicted);
                    if cost + sub_cost < best.0 {
                        sub.insert(0, (a, Some(b)));
                        best = (cost + sub_cost, sub);
                    }
                    rest.insert(i, b);
                }
                rest.insert(0, a);
                best
            }
        }
    }
    search(&mut runnable.to_vec(), predicted).1
}

fn main() {
    println!("policy       makespan (Gcyc)  contention overhead (Gcyc)");
    let mut results = Vec::new();
    for policy in ["round-robin", "phase-aware", "oracle"] {
        let (total, overhead) = simulate(policy);
        results.push((policy, total, overhead));
        println!(
            "{policy:<12} {:>12.2} {:>18.2}",
            total as f64 / 1e9,
            overhead as f64 / 1e9
        );
    }
    let (_, rr_total, rr_overhead) = results[0];
    let (_, pa_total, pa_overhead) = results[1];
    let (_, or_total, or_overhead) = results[2];
    println!(
        "\nphase-aware recovers {:.0}% of the oracle's overhead reduction \
         (speedup over round-robin: {:.2}x, oracle: {:.2}x)",
        100.0 * (rr_overhead - pa_overhead) as f64 / (rr_overhead - or_overhead).max(1) as f64,
        rr_total as f64 / pa_total as f64,
        rr_total as f64 / or_total as f64,
    );
    assert!(
        pa_overhead < rr_overhead,
        "symbiotic matching should reduce contention: {pa_overhead} vs {rr_overhead}"
    );
    assert!(
        or_overhead <= pa_overhead,
        "the oracle bounds the online scheduler"
    );
}
