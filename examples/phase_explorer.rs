//! Phase explorer: a small CLI that prints a benchmark's phase timeline
//! and per-phase statistics — the workspace's equivalent of eyeballing a
//! SimPoint phase plot.
//!
//! ```text
//! cargo run --release --example phase_explorer -- gcc/s
//! cargo run --release --example phase_explorer -- mcf 0.25
//! ```
//!
//! Arguments: benchmark label (default `gzip/g`) and optional length scale
//! (default 0.1). Traces are cached under `target/tpcp-traces`, so
//! re-exploring the same benchmark at the same scale is instant.

use tpcp::core::{ClassifierConfig, PhaseId};
use tpcp::workloads::{BenchmarkKind, WorkloadParams};
use tpcp_experiments::{Engine, SuiteParams, TraceCache};

/// One display glyph per interval: transition = '.', phases cycle through
/// letters.
fn glyph(id: PhaseId) -> char {
    if id.is_transition() {
        '.'
    } else {
        let letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
        letters
            .chars()
            .nth((id.value() as usize - 1) % letters.len())
            .expect("cycle within letters")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let label = args.first().map(String::as_str).unwrap_or("gzip/g");
    let scale: f64 = args
        .get(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.1);

    let kind: BenchmarkKind = label.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let params = SuiteParams {
        workload: WorkloadParams {
            length_scale: scale,
            ..Default::default()
        },
    };
    let mut engine = Engine::new(params);
    let run = engine.classified(kind, ClassifierConfig::hpca2005());
    engine.run(&TraceCache::default_location());
    let run = run.take();

    let timeline: String = run.ids.iter().map(|&id| glyph(id)).collect();
    println!(
        "{} @ scale {scale} — one glyph per interval ('.' = transition)\n",
        kind.label()
    );
    for chunk in timeline.as_bytes().chunks(100) {
        println!("{}", String::from_utf8_lossy(chunk));
    }

    println!(
        "\n{} intervals, {} stable phases, {:.1}% transition time",
        run.ids.len(),
        run.phases_created,
        run.transition_fraction * 100.0
    );
    println!(
        "whole-program CoV {:.1}%  ->  per-phase CoV {:.1}%\n",
        run.cov.whole_program_cov() * 100.0,
        run.cov.weighted_cov() * 100.0
    );
    println!("phase  glyph  intervals  mean CPI   CoV%");
    for p in run.cov.phases() {
        println!(
            "{:>5}  {:>5}  {:>9}  {:>8.2}  {:>5.1}",
            p.phase.to_string(),
            glyph(p.phase),
            p.intervals,
            p.mean_cpi,
            p.cov * 100.0
        );
    }
}
