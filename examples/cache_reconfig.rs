//! Phase-guided cache reconfiguration — the energy optimization the paper
//! cites as a primary consumer of phase information (Balasubramonian et
//! al., Dhodapkar & Smith).
//!
//! When the classifier reports a *stable, recurring* phase whose data
//! working set tolerates a smaller cache, data-cache ways are switched off
//! (`WorkloadSim::set_dl1_ways`, which invalidates the disabled ways like
//! selective-cache-ways hardware); when a phase that needs the capacity
//! returns, they are switched back on. Because phase IDs are derived from
//! code signatures, the ID stays stable across the reconfiguration, so
//! per-phase decisions stick.
//!
//! This is a *real co-simulation*: disabling ways changes the simulated
//! hierarchy's hit rates, which changes measured CPI, which feeds back
//! into the tuner.
//!
//! ```text
//! cargo run --release --example cache_reconfig
//! ```

use std::collections::HashMap;

use tpcp::core::{ClassifierConfig, PhaseClassifier, PhaseId};
use tpcp::trace::IntervalSource;
use tpcp::workloads::WorkloadParams;

const MAX_WAYS: usize = 4;
/// Acceptable per-phase slowdown for the energy win.
const SLOWDOWN_BUDGET: f64 = 1.03;

/// Per-phase way tuner: tries fewer ways for a phase and backs off if the
/// phase's CPI degrades past the budget relative to its full-cache
/// reference.
#[derive(Default)]
struct WayTuner {
    /// Per phase: (currently allocated ways, full-cache reference CPI).
    plans: HashMap<PhaseId, (usize, f64)>,
}

impl WayTuner {
    fn ways_for(&self, phase: PhaseId) -> usize {
        if phase.is_transition() {
            return MAX_WAYS; // unknown behaviour: play safe
        }
        self.plans.get(&phase).map_or(MAX_WAYS, |&(w, _)| w)
    }

    fn feedback(&mut self, phase: PhaseId, ways_used: usize, cpi: f64) {
        if phase.is_transition() {
            return;
        }
        let entry = self.plans.entry(phase).or_insert((MAX_WAYS, cpi));
        if ways_used == MAX_WAYS {
            // Keep the reference fresh, then probe downward.
            entry.1 = cpi;
            if entry.0 == MAX_WAYS {
                entry.0 = MAX_WAYS / 2;
            }
        } else if cpi > entry.1 * SLOWDOWN_BUDGET {
            entry.0 = (entry.0 * 2).min(MAX_WAYS); // too slow: back off
        } else if entry.0 > 1 {
            entry.0 -= 1; // still within budget: push further
        }
    }
}

/// A workload whose phases differ in cache-way sensitivity: a compute
/// phase whose 12KB working set needs 3 of the 4 DL1 ways, a streaming
/// phase that defeats any L1 (ways are wasted energy), and a tiny-kernel
/// phase happy with one way.
fn workload() -> tpcp::workloads::Benchmark {
    use tpcp::workloads::{Region, ScriptNode, StreamSpec};
    let compute = Region::loop_nest(
        "compute",
        0x40_0000,
        6,
        200,
        StreamSpec::Strided {
            stride: 32,
            working_set: 12 * 1024,
        },
    )
    .with_loads_per_insn(0.40);
    let stream = Region::loop_nest(
        "stream",
        0x50_0000,
        6,
        220,
        StreamSpec::Strided {
            stride: 64,
            working_set: 4 * 1024 * 1024,
        },
    )
    .with_loads_per_insn(0.30);
    let kernel = Region::loop_nest(
        "kernel",
        0x60_0000,
        4,
        240,
        StreamSpec::Strided {
            stride: 8,
            working_set: 2 * 1024,
        },
    )
    .with_loads_per_insn(0.25);
    tpcp::workloads::Benchmark::new(
        "reconfig-demo",
        vec![compute, stream, kernel],
        ScriptNode::repeat(
            12,
            ScriptNode::Seq(vec![
                ScriptNode::run(0, 20_000_000),
                ScriptNode::run(1, 15_000_000),
                ScriptNode::run(2, 15_000_000),
            ]),
        ),
    )
}

/// Runs the demo workload under a way policy. Returns (avg CPI, avg ways).
fn run_policy(policy: &str) -> (f64, f64) {
    let params = WorkloadParams::default();
    let mut sim = workload().simulate(&params);
    let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
    let mut tuner = WayTuner::default();

    // Last-value phase prediction drives the *next* interval's allocation.
    let mut predicted_phase = PhaseId::TRANSITION;
    let mut total_cycles = 0u64;
    let mut total_insns = 0u64;
    let mut way_intervals = 0usize;
    let mut intervals = 0usize;

    loop {
        let ways = match policy {
            "full" => MAX_WAYS,
            "minimum" => 1,
            _ => tuner.ways_for(predicted_phase),
        };
        sim.set_dl1_ways(ways);
        let Some(summary) = sim.next_interval(&mut |ev| classifier.observe(ev)) else {
            break;
        };
        let cpi = summary.cpi();
        let phase = classifier.end_interval(cpi);
        if !matches!(policy, "full" | "minimum") {
            tuner.feedback(phase, ways, cpi);
        }
        predicted_phase = phase;

        total_cycles += summary.cycles;
        total_insns += summary.instructions;
        way_intervals += ways;
        intervals += 1;
    }
    (
        total_cycles as f64 / total_insns as f64,
        way_intervals as f64 / intervals.max(1) as f64,
    )
}

fn main() {
    println!("policy        avg CPI   avg active DL1 ways (energy proxy)");
    let (full_cpi, full_ways) = run_policy("full");
    println!("full cache    {full_cpi:>7.3}   {full_ways:>5.2}");
    let (min_cpi, min_ways) = run_policy("minimum");
    println!("1-way cache   {min_cpi:>7.3}   {min_ways:>5.2}");
    let (pg_cpi, pg_ways) = run_policy("phase-guided");
    println!("phase-guided  {pg_cpi:>7.3}   {pg_ways:>5.2}");

    let slowdown = (pg_cpi / full_cpi - 1.0) * 100.0;
    let savings = (1.0 - pg_ways / full_ways) * 100.0;
    println!("\nphase-guided: {savings:.0}% fewer active ways for {slowdown:.1}% slowdown");
    assert!(
        pg_ways < full_ways,
        "phase guidance should save ways over the full-cache policy"
    );
    assert!(
        pg_cpi <= min_cpi * 1.02,
        "phase guidance should not be slower than the always-minimum cache"
    );
}
