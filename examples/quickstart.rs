//! Quickstart: classify a program's execution into phases online and
//! predict the next phase.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tpcp::core::ClassifierConfig;
use tpcp::predict::{NextPhasePredictor, PredictorKind};
use tpcp::workloads::{BenchmarkKind, WorkloadParams};
use tpcp_experiments::{Engine, SuiteParams, TraceCache};

fn main() {
    // 1. Pick a workload. This is the gzip/graphic model — a program with
    //    a few long, stable phases. (Scale it down so the example runs in
    //    seconds; drop `length_scale` for the full run.)
    let params = SuiteParams {
        workload: WorkloadParams {
            length_scale: 0.10,
            ..Default::default()
        },
    };
    let kind = BenchmarkKind::GzipGraphic;

    // 2. Register work on the experiment engine: the paper's phase
    //    classification architecture, plus an RLE-2 next-phase predictor
    //    with confidence counters riding the same classification.
    let mut engine = Engine::new(params);
    let run = engine.classified(kind, ClassifierConfig::hpca2005());
    let prediction = engine.probe(
        kind,
        ClassifierConfig::hpca2005(),
        NextPhasePredictor::new(PredictorKind::rle(2)),
        |p, _| p.breakdown(),
    );

    // 3. Replay. The engine simulates (or loads from cache) the trace and
    //    streams every interval through the classifier exactly once; the
    //    predictor observes each classified phase ID as it appears.
    let cache = TraceCache::default_location();
    engine.run(&cache);

    // 4. Report what the architecture learned.
    let run = run.take();
    let b = prediction.take();
    println!("benchmark        : {}", kind.label());
    println!("intervals        : {}", run.ids.len());
    println!("stable phases    : {}", run.phases_created);
    println!("transition time  : {:.1}%", run.transition_fraction * 100.0);
    println!(
        "whole-program CoV: {:.1}%  ->  per-phase CoV: {:.1}%",
        run.cov.whole_program_cov() * 100.0,
        run.cov.weighted_cov() * 100.0
    );
    println!(
        "avg stable run   : {:.1} intervals (transition: {:.1})",
        run.runs.stable_mean(),
        run.runs.transition_mean()
    );
    println!(
        "next-phase pred  : {:.1}% correct ({:.1}% confident-correct, {:.1}% confident-wrong)",
        b.accuracy() * 100.0,
        b.confident_correct_fraction() * 100.0,
        b.confident_incorrect_fraction() * 100.0
    );

    // Per-phase detail, as a dynamic optimization would consume it.
    println!("\nper-phase CPI:");
    for phase in run.cov.phases() {
        println!(
            "  {:>4}  {:>6} intervals  mean CPI {:>6.2}  CoV {:>5.1}%",
            phase.phase.to_string(),
            phase.intervals,
            phase.mean_cpi,
            phase.cov * 100.0
        );
    }
}
