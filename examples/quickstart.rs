//! Quickstart: classify a program's execution into phases online and
//! predict the next phase.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tpcp::core::{ClassifierConfig, PhaseClassifier};
use tpcp::metrics::{CovAccumulator, RunAccumulator};
use tpcp::predict::{NextPhasePredictor, PredictorKind};
use tpcp::trace::IntervalSource;
use tpcp::workloads::{BenchmarkKind, WorkloadParams};

fn main() {
    // 1. Build a workload. This is the gzip/graphic model — a program with
    //    a few long, stable phases. (Scale it down so the example runs in
    //    seconds; drop `length_scale` for the full run.)
    let params = WorkloadParams {
        length_scale: 0.10,
        ..Default::default()
    };
    let benchmark = BenchmarkKind::GzipGraphic.build(&params);
    let mut sim = benchmark.simulate(&params);

    // 2. Attach the paper's phase classification architecture and an
    //    RLE-2 next-phase predictor with confidence counters.
    let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
    let mut predictor = NextPhasePredictor::new(PredictorKind::rle(2));
    let mut cov = CovAccumulator::new();
    let mut runs = RunAccumulator::new();

    // 3. Stream intervals: observe each committed branch, classify at each
    //    interval boundary, and feed the phase ID to the predictor.
    while let Some(summary) = sim.next_interval(&mut |ev| classifier.observe(ev)) {
        let phase = classifier.end_interval(summary.cpi());
        predictor.observe(phase);
        cov.observe(phase, summary.cpi());
        runs.observe(phase);
    }

    // 4. Report what the architecture learned.
    let summary = cov.finish();
    let runs = runs.finish();
    println!("benchmark        : {}", benchmark.name);
    println!("intervals        : {}", classifier.intervals_seen());
    println!("stable phases    : {}", classifier.phases_created());
    println!(
        "transition time  : {:.1}%",
        classifier.transition_fraction() * 100.0
    );
    println!(
        "whole-program CoV: {:.1}%  ->  per-phase CoV: {:.1}%",
        summary.whole_program_cov() * 100.0,
        summary.weighted_cov() * 100.0
    );
    println!(
        "avg stable run   : {:.1} intervals (transition: {:.1})",
        runs.stable_mean(),
        runs.transition_mean()
    );
    let b = predictor.breakdown();
    println!(
        "next-phase pred  : {:.1}% correct ({:.1}% confident-correct, {:.1}% confident-wrong)",
        b.accuracy() * 100.0,
        b.confident_correct_fraction() * 100.0,
        b.confident_incorrect_fraction() * 100.0
    );

    // Per-phase detail, as a dynamic optimization would consume it.
    println!("\nper-phase CPI:");
    for phase in summary.phases() {
        println!(
            "  {:>4}  {:>6} intervals  mean CPI {:>6.2}  CoV {:>5.1}%",
            phase.phase.to_string(),
            phase.intervals,
            phase.mean_cpi,
            phase.cov * 100.0
        );
    }
}
