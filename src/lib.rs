//! # tpcp — Transition Phase Classification and Prediction
//!
//! A full reproduction of *Lau, Schoenmackers, Calder, "Transition Phase
//! Classification and Prediction", HPCA 2005*, as a Rust workspace. This
//! facade crate re-exports every component crate under one roof:
//!
//! - [`trace`] — branch events, intervals, BBVs, trace recording/replay.
//! - [`uarch`] — the simulation substrate: caches, branch predictors, TLB,
//!   and the Table 1 timing model.
//! - [`workloads`] — synthetic SPEC CPU2000-like benchmark models with the
//!   phase structure the paper evaluates on.
//! - [`core`] — the online phase classifier: accumulator signatures,
//!   signature table, transition phase, and adaptive thresholds.
//! - [`predict`] — next-phase, phase-change, and phase-length predictors
//!   with confidence counters.
//! - [`simpoint`] — the offline SimPoint-style k-means baseline.
//! - [`metrics`] — CoV, run-length, and prediction-quality metrics.
//!
//! ## Quick start
//!
//! ```
//! use tpcp::core::{ClassifierConfig, PhaseClassifier};
//! use tpcp::trace::{IntervalSource, PhaseSpec, SyntheticTrace};
//!
//! // A scripted program with two ground-truth phases.
//! let trace = SyntheticTrace::new(100_000)
//!     .phase(PhaseSpec::uniform(0x1000, 8, 1.0))
//!     .phase(PhaseSpec::uniform(0x9000, 8, 2.5))
//!     .schedule(&[(0, 30), (1, 20), (0, 30)])
//!     .generate();
//!
//! // Classify each interval online.
//! let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
//! let mut replay = trace.replay();
//! let mut ids = Vec::new();
//! while let Some(summary) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
//!     ids.push(classifier.end_interval(summary.cpi()));
//! }
//! assert_eq!(ids.len(), 80);
//! ```

pub use tpcp_core as core;
pub use tpcp_metrics as metrics;
pub use tpcp_predict as predict;
pub use tpcp_simpoint as simpoint;
pub use tpcp_trace as trace;
pub use tpcp_uarch as uarch;
pub use tpcp_workloads as workloads;
