//! Offline stand-in for `parking_lot` locks.
//!
//! Thin wrappers over `std::sync` that reproduce parking_lot's ergonomics:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and
//! poisoning is ignored — a poisoned std lock is recovered rather than
//! propagated, matching parking_lot's poison-free semantics.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(10);
        assert_eq!(*rw.read(), 10);
        *rw.write() = 11;
        assert_eq!(rw.into_inner(), 11);
    }
}
