//! Offline stand-in for `crossbeam`'s scoped threads.
//!
//! Wraps `std::thread::scope` (stable since Rust 1.63) behind crossbeam's
//! 0.8 API shape: `crossbeam::scope(|s| ...)` returns a `Result` that is
//! `Err` when a spawned thread panicked, and spawn closures receive the
//! scope handle so they can spawn nested work.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use thread::scope;

/// Scoped-thread primitives.
pub mod thread {
    use super::*;

    /// A scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env`; the closure receives the scope
        /// so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. Returns `Err` with the panic payload if the closure or
    /// any un-joined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_share_borrowed_state() {
        let mut slots = vec![0u32; 4];
        super::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
