//! Offline stand-in for `crossbeam`'s scoped threads and bounded channels.
//!
//! Wraps `std::thread::scope` (stable since Rust 1.63) behind crossbeam's
//! 0.8 API shape: `crossbeam::scope(|s| ...)` returns a `Result` that is
//! `Err` when a spawned thread panicked, and spawn closures receive the
//! scope handle so they can spawn nested work. The `channel` module covers
//! the bounded MPMC subset the engine needs (here multi-producer,
//! single-consumer per receiver) on top of `std::sync::mpsc::sync_channel`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use thread::scope;

/// Bounded channels behind crossbeam's `channel` API shape.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone; gives
    /// back the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone and
    /// the channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel. Cloning adds a producer.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is at capacity.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking until one is available.
        /// Returns `Err(RecvError)` once all senders are dropped and the
        /// buffer is drained — the idiomatic end-of-stream signal.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Iterates until the channel closes.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    /// A `cap` of 0 makes every send a rendezvous with a receive.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

/// Scoped-thread primitives.
pub mod thread {
    use super::*;

    /// A scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env`; the closure receives the scope
        /// so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. Returns `Err` with the panic payload if the closure or
    /// any un-joined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_share_borrowed_state() {
        let mut slots = vec![0u32; 4];
        super::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn bounded_channel_delivers_in_order() {
        let (tx, rx) = super::channel::bounded(2);
        super::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn bounded_channel_fans_out_to_cloned_senders() {
        let (tx, rx) = super::channel::bounded(1);
        let tx2 = tx.clone();
        super::scope(|scope| {
            scope.spawn(move |_| tx.send(1u32).unwrap());
            scope.spawn(move |_| tx2.send(2u32).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
            assert!(rx.recv().is_err(), "all senders dropped closes the channel");
        })
        .unwrap();
    }

    #[test]
    fn send_to_dropped_receiver_returns_message() {
        let (tx, rx) = super::channel::bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.send(7), Err(super::channel::SendError(7)));
    }
}
