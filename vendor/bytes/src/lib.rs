//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset `tpcp-trace::codec` relies on: a cheaply
//! cloneable, sliceable immutable [`Bytes`] buffer with cursor-style reads,
//! and a growable [`BytesMut`] writer that freezes into one. Backed by an
//! `Arc<[u8]>` so clones and slices share storage like the real crate.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Cursor-style read access to a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u64`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64;
    /// Fills `dst` from the buffer, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

/// Immutable, reference-counted byte buffer with an embedded read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the unread portion.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the unread portion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the unread portion as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the unread portion into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-buffer sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range 0..{len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        data.to_vec().into()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        self.data.into()
    }

    /// The bytes written so far, as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"ab");
        buf.put_u8(0xff);
        buf.put_u64_le(0x0102_0304_0506_0708);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 11);
        let mut cursor = frozen.clone();
        let mut two = [0u8; 2];
        cursor.copy_to_slice(&mut two);
        assert_eq!(&two, b"ab");
        assert_eq!(cursor.get_u8(), 0xff);
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert!(!cursor.has_remaining());
        let head = frozen.slice(..2);
        assert_eq!(head.as_slice(), b"ab");
        assert_eq!(frozen.slice(2..3).to_vec(), vec![0xff]);
    }
}
