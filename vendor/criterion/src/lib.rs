//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the `tpcp-bench` targets use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, throughput
//! annotations, and the `criterion_group!`/`criterion_main!` macros) with a
//! simple adaptive timer: each benchmark is warmed up once, then iterated
//! until a minimum measurement window is reached, and the mean time per
//! iteration (plus throughput, when declared) is printed. There is no
//! statistical analysis or report output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measurement window per benchmark.
const MIN_MEASURE: Duration = Duration::from_millis(200);
/// Iteration ceiling so very slow bodies still terminate promptly.
const MAX_ITERS: u64 = 10_000;

/// Top-level harness handle, passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stub sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough iterations for a stable mean.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (also primes lazy state in the routine).
        black_box(routine());
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= MIN_MEASURE {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {id:<40} (no iterations measured)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.1} Melem/s", n as f64 / per_iter / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "bench {id:<40} {:>12.3} us/iter ({} iters){rate}",
        per_iter * 1e6,
        bencher.iters
    );
}

/// Declares a benchmark group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
