//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! Provides just what `tpcp-simpoint::kmeans` uses: a seedable [`rngs::StdRng`]
//! with [`Rng::random`] and [`Rng::random_range`]. The generator is a
//! SplitMix64 — deterministic for a given seed, statistically solid for
//! k-means++ seeding, and dependency-free.

use std::ops::Range;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is negligible for the small spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniformly random value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.random_range(0usize..17);
            assert_eq!(x, b.random_range(0usize..17));
            assert!(x < 17);
            let f = a.random::<f64>();
            assert_eq!(f, b.random::<f64>());
            assert!((0.0..1.0).contains(&f));
        }
    }
}
