//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The companion `serde` stub blanket-implements its marker traits, so the
//! derives expand to nothing; they exist so `#[derive(Serialize)]` and
//! `#[serde(...)]` helper attributes parse.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
