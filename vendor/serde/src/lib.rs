//! Offline stand-in for the `serde` facade.
//!
//! This workspace builds without network access, so the real `serde` crate
//! cannot be fetched. The codebase only uses serde as a *marker* — types
//! derive `Serialize`/`Deserialize` so that downstream embedders can bound
//! on them — and never actually serializes through serde (the wire format
//! lives in `tpcp-trace::codec`). This stub therefore provides the trait
//! names with blanket implementations and no-op derive macros, which is
//! enough to keep every `#[derive(Serialize, Deserialize)]` and every
//! `T: Serialize + DeserializeOwned` bound compiling unchanged.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}

    impl<T: ?Sized> DeserializeOwned for T {}
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
