//! Collection strategies (`prop::collection::vec`).

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// A range of collection sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
