//! Offline, generate-only stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`,
//! boxed strategies, tuple and range strategies, `prop::collection::vec`,
//! `any::<T>()`, the `proptest!`/`prop_oneof!` macros, and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (deterministic across runs), there is no shrinking, and
//! failures report the generated inputs verbatim. Case count defaults to 64
//! and can be overridden with the `PROPTEST_CASES` environment variable.

pub mod arbitrary;
pub mod collection;
pub mod runner;
pub mod strategy;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the real prelude's `prop` module shortcut
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(stringify!($name), &mut |rng: &mut $crate::runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    (inputs, outcome)
                });
            }
        )*
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

/// Discards the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
