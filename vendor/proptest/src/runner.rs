//! Deterministic case runner and RNG.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of generated cases per property (override with the
/// `PROPTEST_CASES` environment variable).
const DEFAULT_CASES: u64 = 64;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assume!` rejected the inputs; the case is discarded.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Deterministic SplitMix64 RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 for bound 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs, distinct per test.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs one property: `case` generates inputs from the RNG and returns the
/// formatted inputs plus the case outcome. Panics (failing the `#[test]`)
/// on the first failing case, reporting the inputs that produced it.
/// One property-test case: formatted inputs plus the case outcome.
pub type CaseFn<'a> = &'a mut dyn FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>);

pub fn run(name: &str, case: CaseFn<'_>) {
    let cases = case_count();
    let mut rng = TestRng::new(seed_for(name));
    let mut passed = 0u64;
    let mut attempts = 0u64;
    while passed < cases {
        attempts += 1;
        assert!(
            attempts <= cases.saturating_mul(20),
            "property '{name}': too many inputs rejected by prop_assume! \
             ({passed}/{cases} cases passed after {attempts} attempts)"
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok((_, Ok(()))) => passed += 1,
            Ok((_, Err(TestCaseError::Reject))) => continue,
            Ok((inputs, Err(TestCaseError::Fail(message)))) => {
                panic!(
                    "property '{name}' failed at case {attempts}: {message}\n\
                     inputs:\n{inputs}"
                );
            }
            Err(payload) => {
                eprintln!("property '{name}' panicked at case {attempts}");
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert!(a.below(13) < 13);
            b.below(13);
        }
    }
}
