//! `any::<T>()` — default strategies for primitive types.

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
