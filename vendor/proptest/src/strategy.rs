//! The [`Strategy`] trait and combinators.

use std::fmt::Debug;
use std::ops::Range;
use std::sync::Arc;

use crate::runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree or shrinking: a strategy
/// simply draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds recursive values: `f` receives a strategy for the inner
    /// (smaller) value and returns a strategy for the composite. `depth`
    /// bounds the nesting; the size/branch hints are accepted for API
    /// compatibility but unused (there is no shrinking to guide).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            // Mix the shallower strategy back in so generated values vary
            // in depth instead of always being maximally nested.
            current = Union::new(vec![current.clone(), f(current).boxed()]).boxed();
        }
        current
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Object-safe generation, backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
