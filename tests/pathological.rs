//! Failure-injection tests: degenerate and adversarial inputs the design
//! must survive without panicking or corrupting state.

use tpcp::core::{ClassifierConfig, PhaseClassifier, PhaseId};
use tpcp::metrics::{CovAccumulator, RunAccumulator};
use tpcp::predict::{LengthClassPredictor, NextPhasePredictor, PredictorKind};
use tpcp::trace::{BranchEvent, IntervalCutter, IntervalSource, RecordedTrace, TraceStats};

/// Every event hits the same PC: the signature collapses into one
/// dimension, but classification must still be stable.
#[test]
fn single_pc_trace() {
    let mut c = PhaseClassifier::new(ClassifierConfig::hpca2005());
    let mut ids = Vec::new();
    for _ in 0..20 {
        for _ in 0..100 {
            c.observe(BranchEvent::new(0xAAAA, 100));
        }
        ids.push(c.end_interval(1.0));
    }
    // One behaviour => at most one stable phase; later intervals all agree.
    assert_eq!(c.phases_created(), 1);
    assert!(ids[12..].windows(2).all(|w| w[0] == w[1]));
}

/// Every event has a unique PC: no interval ever resembles another.
#[test]
fn unique_pc_per_event_trace() {
    let mut c = PhaseClassifier::new(ClassifierConfig::hpca2005());
    let mut pc = 0u64;
    for _ in 0..30 {
        for _ in 0..50 {
            pc += 0x9E37_79B9; // large odd stride: unique hash inputs
            c.observe(BranchEvent::new(pc, 100));
        }
        let id = c.end_interval(1.0);
        // With 16 accumulators, random code still produces *similar*
        // flat signatures, so this may or may not stay transition — the
        // invariant is just that nothing panics and accounting holds.
        let _ = id;
    }
    assert_eq!(c.intervals_seen(), 30);
    assert!(c.table().len() <= 32);
}

/// Zero-instruction events are legal trace content.
#[test]
fn zero_length_blocks() {
    let events = vec![
        (BranchEvent::new(0x10, 0), 0u64),
        (BranchEvent::new(0x20, 50), 100),
        (BranchEvent::new(0x30, 0), 0),
        (BranchEvent::new(0x40, 50), 100),
    ];
    let trace = RecordedTrace::record(IntervalCutter::from_iter(100, events));
    assert_eq!(trace.len(), 1);
    let stats = TraceStats::of(&trace);
    assert_eq!(stats.instructions, 100);
    let mut c = PhaseClassifier::new(ClassifierConfig::hpca2005());
    let mut replay = trace.replay();
    while let Some(s) = replay.next_interval(&mut |ev| c.observe(ev)) {
        c.end_interval(s.cpi());
    }
    assert_eq!(c.intervals_seen(), 1);
}

/// A one-interval program exercises every "first time" path at once.
#[test]
fn single_interval_program() {
    let mut c = PhaseClassifier::new(ClassifierConfig::hpca2005());
    c.observe(BranchEvent::new(0x1, 10));
    let id = c.end_interval(0.5);
    assert!(id.is_transition());

    let mut p = NextPhasePredictor::new(PredictorKind::rle(2));
    assert!(p.observe(id).is_none(), "nothing to resolve");
    assert_eq!(p.breakdown().total(), 0);

    let mut l = LengthClassPredictor::new(32, 4);
    assert!(l.observe(id).is_none());
    assert_eq!(l.counts(), (0, 0));
}

/// NaN and zero CPIs must not poison the adaptive feedback or metrics.
#[test]
fn weird_cpi_values() {
    let mut c = PhaseClassifier::new(ClassifierConfig::hpca2005());
    let mut cov = CovAccumulator::new();
    for (i, cpi) in [0.0, 1.0, 1e9, 1.0, 0.0, 1.0].iter().enumerate() {
        for _ in 0..50 {
            c.observe(BranchEvent::new(0x100 + (i as u64 % 4) * 0x40, 100));
        }
        let id = c.end_interval(*cpi);
        cov.observe(id, *cpi);
    }
    let summary = cov.finish();
    assert!(summary.weighted_cov().is_finite());
    assert!(summary.whole_program_cov().is_finite());
}

/// Phase ID streams consisting entirely of the transition phase.
#[test]
fn all_transition_stream() {
    let ids = vec![PhaseId::TRANSITION; 100];
    let mut p = NextPhasePredictor::new(PredictorKind::markov(2));
    let mut runs = RunAccumulator::new();
    for &id in &ids {
        p.observe(id);
        runs.observe(id);
    }
    // One long transition run; last-value predicts it perfectly.
    assert_eq!(p.breakdown().accuracy(), 1.0);
    let stats = runs.finish();
    assert_eq!(stats.runs().len(), 1);
    assert_eq!(stats.stable_mean(), 0.0);
    assert_eq!(stats.transition_mean(), 100.0);
}

/// Rapid phase thrash: a new phase ID every interval, forever.
#[test]
fn every_interval_new_phase() {
    let mut p = NextPhasePredictor::new(PredictorKind::rle(2));
    let mut l = LengthClassPredictor::new(32, 4);
    for i in 0..500u32 {
        p.observe(PhaseId::new(i + 1));
        l.observe(PhaseId::new(i + 1));
    }
    assert_eq!(p.breakdown().accuracy(), 0.0, "nothing is predictable");
    // The length predictor should at least learn that runs are short.
    let (correct, total) = l.counts();
    assert_eq!(total, 499);
    assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
}

/// Tiny tables (1-entry classifier table, 4-entry predictor tables) must
/// still behave, just poorly.
#[test]
fn minimal_table_sizes() {
    let cfg = ClassifierConfig::builder()
        .table_entries(Some(1))
        .min_count(2)
        .build();
    let mut c = PhaseClassifier::new(cfg);
    for i in 0..50u64 {
        for _ in 0..20 {
            c.observe(BranchEvent::new(0x1000 * (i % 3 + 1), 100));
        }
        c.end_interval(1.0);
    }
    assert!(c.table().len() <= 1);

    let mut p = NextPhasePredictor::new(PredictorKind::rle(2).with_table_geometry(4, 4));
    for i in 0..100u32 {
        p.observe(PhaseId::new(i % 7));
    }
    assert_eq!(p.breakdown().total(), 99);
}
