//! Validation against scripted ground truth: the classifier's phases
//! should agree with the phases the synthetic trace was built from.

use tpcp::core::{ClassifierConfig, PhaseClassifier, PhaseId};
use tpcp::metrics::{purity, rand_index};
use tpcp::simpoint::{SimPointClassifier, SimPointConfig};
use tpcp::trace::{BbvTrace, IntervalSource, PhaseSpec, SyntheticTrace};

fn scripted() -> (tpcp::trace::RecordedTrace, Vec<usize>) {
    let script = SyntheticTrace::new(50_000)
        .phase(PhaseSpec::uniform(0x10_0000, 8, 1.0))
        .phase(PhaseSpec::uniform(0x90_0000, 8, 2.5))
        .phase(PhaseSpec::uniform(0x50_0000, 8, 4.0))
        .schedule(&[
            (0, 40),
            (1, 15),
            (0, 40),
            (2, 10),
            (1, 15),
            (0, 40),
            (2, 10),
        ]);
    let truth = script.ground_truth();
    (script.generate(), truth)
}

fn classify(trace: &tpcp::trace::RecordedTrace) -> Vec<PhaseId> {
    let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
    let mut replay = trace.replay();
    let mut ids = Vec::new();
    while let Some(s) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
        ids.push(classifier.end_interval(s.cpi()));
    }
    ids
}

#[test]
fn online_classifier_recovers_ground_truth() {
    let (trace, truth) = scripted();
    let ids = classify(&trace);
    assert_eq!(ids.len(), truth.len());

    // The transition phase deliberately buckets unrelated rare behaviour
    // (each true phase's first 8 appearances land there), so evaluate
    // agreement over the *stable* classifications.
    let stable: (Vec<PhaseId>, Vec<usize>) = ids
        .iter()
        .zip(&truth)
        .filter(|(id, _)| !id.is_transition())
        .map(|(&id, &t)| (id, t))
        .unzip();
    assert!(stable.0.len() > ids.len() * 3 / 4, "mostly stable");
    let p = purity(&stable.0, &stable.1);
    let r = rand_index(&stable.0, &stable.1);
    assert!(p > 0.95, "purity {p}");
    assert!(r > 0.9, "rand index {r}");
}

#[test]
fn offline_simpoint_recovers_ground_truth() {
    let (trace, truth) = scripted();
    let bbvs = BbvTrace::collect(trace.replay());
    let result = SimPointClassifier::new(SimPointConfig::default()).classify(&bbvs);
    let p = purity(&result.assignments, &truth);
    assert!(p > 0.95, "purity {p}");
}

#[test]
fn online_and_offline_largely_agree() {
    let (trace, _) = scripted();
    let online = classify(&trace);
    let bbvs = BbvTrace::collect(trace.replay());
    let offline = SimPointClassifier::new(SimPointConfig::default()).classify(&bbvs);
    // Skip the online warm-up (transition) prefix.
    let skip = 30;
    let r = rand_index(&online[skip..], &offline.assignments[skip..]);
    assert!(
        r > 0.85,
        "online and offline classifications should agree: {r}"
    );
}
