//! End-to-end integration: workload simulation → online classification →
//! prediction → metrics, across crate boundaries.

use tpcp::core::{ClassifierConfig, PhaseClassifier, PhaseId};
use tpcp::metrics::{CovAccumulator, RunAccumulator};
use tpcp::predict::{
    ChangeEvaluator, ChangePolicy, HistoryKind, LengthClassPredictor, NextPhasePredictor,
    PhaseChangePredictor, PredictorKind,
};
use tpcp::trace::{BbvTrace, IntervalSource, RecordedTrace};
use tpcp::workloads::{BenchmarkKind, WorkloadParams};

fn tiny_params() -> WorkloadParams {
    WorkloadParams {
        length_scale: 0.02,
        ..Default::default()
    }
}

/// Simulate → classify, returning the phase stream and CPIs.
fn classify(kind: BenchmarkKind) -> (Vec<PhaseId>, Vec<f64>) {
    let params = tiny_params();
    let mut sim = kind.build(&params).simulate(&params);
    let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
    let mut ids = Vec::new();
    let mut cpis = Vec::new();
    while let Some(s) = sim.next_interval(&mut |ev| classifier.observe(ev)) {
        ids.push(classifier.end_interval(s.cpi()));
        cpis.push(s.cpi());
    }
    (ids, cpis)
}

#[test]
fn full_pipeline_produces_consistent_streams() {
    let (ids, cpis) = classify(BenchmarkKind::GzipProgram);
    assert!(ids.len() > 5, "got {} intervals", ids.len());
    assert_eq!(ids.len(), cpis.len());
    assert!(cpis.iter().all(|&c| c > 0.0 && c < 100.0));
}

#[test]
fn classification_reduces_cov_on_every_benchmark() {
    // The core claim of phase classification: per-phase CoV is (much)
    // smaller than whole-program CoV.
    let params = tiny_params();
    for kind in [
        BenchmarkKind::Ammp,
        BenchmarkKind::GzipGraphic,
        BenchmarkKind::Mcf,
    ] {
        let mut sim = kind.build(&params).simulate(&params);
        let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
        let mut cov = CovAccumulator::new();
        while let Some(s) = sim.next_interval(&mut |ev| classifier.observe(ev)) {
            cov.observe(classifier.end_interval(s.cpi()), s.cpi());
        }
        let summary = cov.finish();
        assert!(
            summary.weighted_cov() < summary.whole_program_cov(),
            "{}: per-phase {} >= whole {}",
            kind.label(),
            summary.weighted_cov(),
            summary.whole_program_cov()
        );
    }
}

#[test]
fn recorded_traces_replay_identically_through_the_classifier() {
    let params = tiny_params();
    let trace = RecordedTrace::record(BenchmarkKind::Bzip2Program.build(&params).simulate(&params));
    let classify_replay = || {
        let mut classifier = PhaseClassifier::new(ClassifierConfig::hpca2005());
        let mut replay = trace.replay();
        let mut ids = Vec::new();
        while let Some(s) = replay.next_interval(&mut |ev| classifier.observe(ev)) {
            ids.push(classifier.end_interval(s.cpi()));
        }
        ids
    };
    assert_eq!(classify_replay(), classify_replay());
}

#[test]
fn predictors_consume_classifier_output() {
    let (ids, _) = classify(BenchmarkKind::Ammp);
    let mut next = NextPhasePredictor::new(PredictorKind::rle(2));
    let mut change = ChangeEvaluator::new(PhaseChangePredictor::new(
        HistoryKind::Markov(2),
        ChangePolicy::MostRecent,
        true,
        32,
        4,
    ));
    let mut length = LengthClassPredictor::new(32, 4);
    for &id in &ids {
        next.observe(id);
        change.observe(id);
        length.observe(id);
    }
    assert_eq!(next.breakdown().total(), ids.len() as u64 - 1);
    // Changes seen by the evaluator must match the stream's run boundaries.
    let runs = {
        let mut acc = RunAccumulator::new();
        for &id in &ids {
            acc.observe(id);
        }
        acc.finish()
    };
    assert_eq!(change.breakdown().total(), runs.change_count() as u64);
}

#[test]
fn bbv_traces_support_offline_classification() {
    let params = tiny_params();
    let trace = RecordedTrace::record(BenchmarkKind::Galgel.build(&params).simulate(&params));
    let bbvs = BbvTrace::collect(trace.replay());
    assert_eq!(bbvs.len(), trace.len());
    let result = tpcp::simpoint::SimPointClassifier::new(Default::default()).classify(&bbvs);
    assert_eq!(result.assignments.len(), bbvs.len());
    assert!(result.k >= 1);
}

#[test]
fn transition_phase_reduces_phase_count() {
    let params = tiny_params();
    let count_phases = |min_count: u8| {
        let mut sim = BenchmarkKind::GccScilab.build(&params).simulate(&params);
        let cfg = ClassifierConfig::builder()
            .min_count(min_count)
            .adaptive(None)
            .build();
        let mut classifier = PhaseClassifier::new(cfg);
        while let Some(s) = sim.next_interval(&mut |ev| classifier.observe(ev)) {
            classifier.end_interval(s.cpi());
        }
        classifier.phases_created()
    };
    let without = count_phases(0);
    let with = count_phases(8);
    assert!(
        with < without,
        "transition phase must reduce phase IDs: {with} vs {without}"
    );
}
