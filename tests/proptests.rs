//! Cross-crate property tests: invariants that must hold for any phase ID
//! stream, tying the classifier's output contract to the predictors' and
//! metrics' input contracts.

use proptest::prelude::*;
use tpcp::core::PhaseId;
use tpcp::metrics::{CovAccumulator, RunAccumulator};
use tpcp::predict::{
    ChangeEvaluator, ChangePolicy, HistoryKind, LengthClassPredictor, NextPhasePredictor,
    PerfectMarkov, PhaseChangePredictor, PredictorKind,
};

/// Arbitrary phase streams with realistic run structure: a few phases,
/// runs of varying length.
fn arb_stream() -> impl Strategy<Value = Vec<PhaseId>> {
    prop::collection::vec((0u32..6, 1usize..12), 1..60).prop_map(|runs| {
        runs.into_iter()
            .flat_map(|(phase, len)| std::iter::repeat_n(PhaseId::new(phase), len))
            .collect()
    })
}

proptest! {
    /// The next-phase predictor resolves exactly one prediction per
    /// interval transition, and its breakdown categories partition them.
    #[test]
    fn next_phase_accounting(stream in arb_stream()) {
        for kind in [PredictorKind::last_value(), PredictorKind::markov(2), PredictorKind::rle(2)] {
            let mut p = NextPhasePredictor::new(kind);
            let mut resolved = 0u64;
            for &id in &stream {
                if p.observe(id).is_some() {
                    resolved += 1;
                }
            }
            prop_assert_eq!(resolved, stream.len() as u64 - 1);
            prop_assert_eq!(p.breakdown().total(), resolved);
            prop_assert!(p.breakdown().accuracy() <= 1.0);
        }
    }

    /// Change evaluators judge exactly the stream's run boundaries.
    #[test]
    fn change_evaluator_counts_boundaries(stream in arb_stream()) {
        let mut acc = RunAccumulator::new();
        for &id in &stream {
            acc.observe(id);
        }
        let boundaries = acc.finish().change_count() as u64;

        let mut e = ChangeEvaluator::new(PhaseChangePredictor::new(
            HistoryKind::Rle(2), ChangePolicy::LastK(4), true, 32, 4));
        for &id in &stream {
            e.observe(id);
        }
        prop_assert_eq!(e.breakdown().total(), boundaries);
    }

    /// A perfect predictor is never beaten by a finite-table predictor of
    /// the same order under the same (most-recent) policy... but at
    /// minimum, its accuracy is monotone: repeating a stream twice can
    /// only raise the fraction of previously-seen changes.
    #[test]
    fn perfect_markov_improves_on_repetition(stream in arb_stream()) {
        let run = |streams: &[&[PhaseId]]| {
            let mut p = PerfectMarkov::new(HistoryKind::Markov(1));
            for s in streams {
                for &id in *s {
                    p.observe(id);
                }
            }
            p.correct_fraction()
        };
        let once = run(&[&stream]);
        let twice = run(&[&stream, &stream]);
        prop_assert!(twice >= once - 1e-12, "{once} -> {twice}");
    }

    /// Length predictor resolutions equal completed runs minus the first
    /// (nothing outstanding) — i.e., boundaries minus zero or one.
    #[test]
    fn length_predictor_resolution_count(stream in arb_stream()) {
        let mut acc = RunAccumulator::new();
        for &id in &stream {
            acc.observe(id);
        }
        let boundaries = acc.finish().change_count() as u64;

        let mut p = LengthClassPredictor::new(32, 4);
        let mut judged = 0u64;
        for &id in &stream {
            if p.observe(id).is_some() {
                judged += 1;
            }
        }
        prop_assert_eq!(judged, boundaries);
        let (correct, total) = p.counts();
        prop_assert_eq!(total, judged);
        prop_assert!(correct <= total);
    }

    /// CoV weighting is scale-invariant: multiplying every CPI by a
    /// positive constant leaves every CoV unchanged.
    #[test]
    fn cov_scale_invariance(stream in arb_stream(), scale in 0.1f64..100.0) {
        let cpis: Vec<f64> = stream.iter().enumerate()
            .map(|(i, id)| 1.0 + f64::from(id.value()) + (i % 3) as f64 * 0.1)
            .collect();
        let run = |k: f64| {
            let mut acc = CovAccumulator::new();
            for (&id, &cpi) in stream.iter().zip(&cpis) {
                acc.observe(id, cpi * k);
            }
            acc.finish()
        };
        let base = run(1.0);
        let scaled = run(scale);
        prop_assert!((base.weighted_cov() - scaled.weighted_cov()).abs() < 1e-9);
        prop_assert!((base.whole_program_cov() - scaled.whole_program_cov()).abs() < 1e-9);
    }

    /// Every predictor tolerates the transition phase (ID 0) like any
    /// other phase — the paper's Section 5 requirement.
    #[test]
    fn predictors_treat_transition_normally(stream in arb_stream()) {
        // Force a healthy share of transition IDs.
        let with_transitions: Vec<PhaseId> = stream
            .iter()
            .enumerate()
            .map(|(i, &id)| if i % 5 == 0 { PhaseId::TRANSITION } else { id })
            .collect();
        let mut p = NextPhasePredictor::new(PredictorKind::rle(2));
        let mut lp = LengthClassPredictor::new(32, 4);
        for &id in &with_transitions {
            p.observe(id);
            lp.observe(id);
        }
        prop_assert_eq!(p.breakdown().total(), with_transitions.len() as u64 - 1);
    }
}
